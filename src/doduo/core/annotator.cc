#include "doduo/core/annotator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "doduo/util/thread_pool.h"

namespace doduo::core {

namespace {

// Shared by the scalar and batched type paths so both decode logits
// identically.
std::vector<std::vector<std::string>> DecodeTypeLogits(
    const nn::Tensor& logits, const DoduoConfig& config,
    const table::LabelVocab& type_vocab) {
  std::vector<std::vector<std::string>> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    std::vector<std::string> names;
    if (config.multi_label) {
      const float threshold = config.multi_label_threshold;
      const float z_threshold =
          std::log(threshold) - std::log(1.0f - threshold);
      int64_t best = 0;
      for (int64_t j = 0; j < logits.cols(); ++j) {
        if (z[j] > z_threshold) {
          names.push_back(type_vocab.Name(static_cast<int>(j)));
        }
        if (z[j] > z[best]) best = j;
      }
      if (names.empty()) {
        names.push_back(type_vocab.Name(static_cast<int>(best)));
      }
    } else {
      int64_t best = 0;
      for (int64_t j = 1; j < logits.cols(); ++j) {
        if (z[j] > z[best]) best = j;
      }
      names.push_back(type_vocab.Name(static_cast<int>(best)));
    }
    annotations.push_back(std::move(names));
  }
  return annotations;
}

}  // namespace

Annotator::Annotator(DoduoModel* model,
                     const table::TableSerializer* serializer,
                     const table::LabelVocab* type_vocab,
                     const table::LabelVocab* relation_vocab)
    : model_(model),
      serializer_(serializer),
      type_vocab_(type_vocab),
      relation_vocab_(relation_vocab) {
  DODUO_CHECK(model != nullptr);
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(type_vocab != nullptr);
}

std::vector<std::vector<std::string>> Annotator::AnnotateTypes(
    const table::Table& table) const {
  model_->set_training(false);
  const table::SerializedTable input = serializer_->SerializeTable(table);
  const nn::Tensor& logits = model_->ForwardTypes(input);
  return DecodeTypeLogits(logits, model_->config(), *type_vocab_);
}

void Annotator::ForEachTable(
    std::span<const table::Table> tables,
    const std::function<void(DoduoModel*, size_t,
                             const table::SerializedTable&)>& fn) const {
  model_->set_training(false);

  // Serialization is cheap relative to the encoder and shares the tokenizer,
  // so it happens up front on the calling thread.
  std::vector<table::SerializedTable> serialized;
  serialized.reserve(tables.size());
  for (const table::Table& table : tables) {
    serialized.push_back(serializer_->SerializeTable(table));
  }

  util::ThreadPool* pool = util::ComputePool();
  const size_t replicas_wanted = std::min<size_t>(
      static_cast<size_t>(pool->num_threads()), tables.size());
  if (replicas_wanted <= 1 || util::ThreadPool::InWorker()) {
    for (size_t t = 0; t < tables.size(); ++t) {
      fn(model_, t, serialized[t]);
    }
    return;
  }

  // The forward pass caches state in the model, so concurrent tables need
  // separate replicas: same config, weights copied in, shared mask builder.
  // Replica 0 is the primary model itself (the caller's ParallelFor chunk).
  const std::vector<nn::Tensor> weights = model_->SnapshotWeights();
  std::vector<std::unique_ptr<DoduoModel>> replicas;
  replicas.reserve(replicas_wanted - 1);
  for (size_t r = 1; r < replicas_wanted; ++r) {
    util::Rng rng(1);  // initializer values are immediately overwritten
    auto replica = std::make_unique<DoduoModel>(model_->config(), &rng);
    replica->RestoreWeights(weights);
    replica->set_mask_builder(model_->mask_builder());
    replica->set_training(false);
    replicas.push_back(std::move(replica));
  }

  const size_t stride = replicas_wanted;
  pool->ParallelFor(
      0, static_cast<int64_t>(replicas_wanted), /*grain=*/1,
      [&](int64_t replica_begin, int64_t replica_end) {
        for (int64_t r = replica_begin; r < replica_end; ++r) {
          DoduoModel* model =
              r == 0 ? model_ : replicas[static_cast<size_t>(r - 1)].get();
          for (size_t t = static_cast<size_t>(r); t < tables.size();
               t += stride) {
            fn(model, t, serialized[t]);
          }
        }
      });
}

std::vector<std::vector<std::vector<std::string>>>
Annotator::AnnotateTypesBatch(std::span<const table::Table> tables) const {
  std::vector<std::vector<std::vector<std::string>>> results(tables.size());
  const DoduoConfig& config = model_->config();
  ForEachTable(tables, [&](DoduoModel* model, size_t index,
                           const table::SerializedTable& input) {
    results[index] =
        DecodeTypeLogits(model->ForwardTypes(input), config, *type_vocab_);
  });
  return results;
}

std::vector<nn::Tensor> Annotator::ColumnEmbeddingsBatch(
    std::span<const table::Table> tables) const {
  std::vector<nn::Tensor> results(tables.size());
  ForEachTable(tables, [&](DoduoModel* model, size_t index,
                           const table::SerializedTable& input) {
    results[index] = model->ColumnEmbeddings(input);
  });
  return results;
}

std::vector<std::string> Annotator::AnnotateRelations(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  DODUO_CHECK(relation_vocab_ != nullptr)
      << "model was built without a relation head";
  model_->set_training(false);
  const table::SerializedTable input = serializer_->SerializeTable(table);
  const nn::Tensor& logits = model_->ForwardRelations(input, pairs);
  std::vector<std::string> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (z[j] > z[best]) best = j;
    }
    annotations.push_back(relation_vocab_->Name(static_cast<int>(best)));
  }
  return annotations;
}

std::vector<std::string> Annotator::AnnotateKeyRelations(
    const table::Table& table) const {
  std::vector<std::pair<int, int>> pairs;
  for (int c = 1; c < table.num_columns(); ++c) pairs.emplace_back(0, c);
  if (pairs.empty()) return {};
  return AnnotateRelations(table, pairs);
}

nn::Tensor Annotator::ColumnEmbeddings(const table::Table& table) const {
  model_->set_training(false);
  return model_->ColumnEmbeddings(serializer_->SerializeTable(table));
}

}  // namespace doduo::core
