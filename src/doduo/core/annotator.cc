#include "doduo/core/annotator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "doduo/core/calibration.h"
#include "doduo/core/replica_pool.h"
#include "doduo/util/logging.h"
#include "doduo/util/thread_pool.h"

namespace doduo::core {

namespace {

// Pipeline metrics (DESIGN §10). Resolved once per process; the annotate
// hot path only pays relaxed atomic adds.
struct AnnotatorMetrics {
  util::Counter* tables = util::GetCounter("annotator.tables_total");
  util::Counter* columns = util::GetCounter("annotator.columns_total");
  util::Counter* errors = util::GetCounter("annotator.errors_total");
  util::Counter* batches = util::GetCounter("annotator.batches_total");
  util::Counter* abstained = util::GetCounter("annotate.abstained");
  util::Counter* skipped_cols = util::GetCounter("annotate.skipped_cols");
  util::Histogram* annotate_us =
      util::GetHistogram("annotator.annotate_us");
  util::Histogram* batch_us = util::GetHistogram("annotator.batch_us");
};

AnnotatorMetrics& Metrics() {
  static AnnotatorMetrics metrics;
  return metrics;
}

util::Status CountError(util::Status status) {
  Metrics().errors->Increment();
  return status;
}

// Shared by the scalar and batched type paths so both decode logits
// identically.
std::vector<std::vector<std::string>> DecodeTypeLogits(
    const nn::Tensor& logits, const DoduoConfig& config,
    const table::LabelVocab& type_vocab) {
  std::vector<std::vector<std::string>> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    std::vector<std::string> names;
    if (config.multi_label) {
      const float threshold = config.multi_label_threshold;
      const float z_threshold =
          std::log(threshold) - std::log(1.0f - threshold);
      int64_t best = 0;
      for (int64_t j = 0; j < logits.cols(); ++j) {
        if (z[j] > z_threshold) {
          names.push_back(type_vocab.Name(static_cast<int>(j)));
        }
        if (z[j] > z[best]) best = j;
      }
      if (names.empty()) {
        names.push_back(type_vocab.Name(static_cast<int>(best)));
      }
    } else {
      int64_t best = 0;
      for (int64_t j = 1; j < logits.cols(); ++j) {
        if (z[j] > z[best]) best = j;
      }
      names.push_back(type_vocab.Name(static_cast<int>(best)));
    }
    annotations.push_back(std::move(names));
  }
  return annotations;
}

}  // namespace

void ApplyAbstention(ColumnOutcome* outcome, double abstain_below) {
  if (abstain_below <= 0.0 || !outcome->annotated()) return;
  if (outcome->confidence < abstain_below) {
    outcome->labels.clear();
    outcome->abstained = true;
    Metrics().abstained->Increment();
  }
}

Annotator::Annotator(DoduoModel* model,
                     const table::TableSerializer* serializer,
                     const table::LabelVocab* type_vocab,
                     const table::LabelVocab* relation_vocab)
    : model_(model),
      serializer_(serializer),
      type_vocab_(type_vocab),
      relation_vocab_(relation_vocab) {
  DODUO_CHECK(model != nullptr);
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(type_vocab != nullptr);
}

util::Result<std::vector<std::vector<std::string>>> Annotator::AnnotateTypes(
    const table::Table& table) const {
  util::ScopedTimer timer(Metrics().annotate_us, "annotator.annotate_types");
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  model_->set_training(false);
  const nn::Tensor& logits = model_->ForwardTypes(input.value());
  Metrics().tables->Increment();
  Metrics().columns->Increment(
      static_cast<uint64_t>(table.num_columns()));
  return DecodeTypeLogits(logits, model_->config(), *type_vocab_);
}

util::Status Annotator::ValidatePairs(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  const int n = table.num_columns();
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto [a, b] = pairs[p];
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return util::Status::InvalidArgument(
          "relation pair " + std::to_string(p) + " = (" + std::to_string(a) +
          ", " + std::to_string(b) + ") is out of range for table '" +
          table.id() + "' with " + std::to_string(n) + " columns");
    }
    // Pair lists are short (at most one per column pair of one table), so
    // the quadratic duplicate scan costs nothing and allocates nothing.
    for (size_t q = 0; q < p; ++q) {
      if (pairs[q] == pairs[p]) {
        return util::Status::InvalidArgument(
            "duplicate relation pair (" + std::to_string(a) + ", " +
            std::to_string(b) + ") at positions " + std::to_string(q) +
            " and " + std::to_string(p) + " for table '" + table.id() + "'");
      }
    }
  }
  return util::Status::Ok();
}

util::Status Annotator::ForEachTable(
    std::span<const table::Table> tables,
    const std::function<void(DoduoModel*, size_t,
                             const table::SerializedTable&)>& fn) const {
  util::ScopedTimer timer(Metrics().batch_us, "annotator.batch");
  model_->set_training(false);

  // Serialization is cheap relative to the encoder and shares the tokenizer,
  // so it happens up front on the calling thread — which also means every
  // table is validated before the first forward pass runs.
  std::vector<table::SerializedTable> serialized;
  serialized.reserve(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    auto input = serializer_->SerializeTable(tables[t]);
    if (!input.ok()) {
      return CountError(util::Status(
          input.status().code(),
          "table " + std::to_string(t) + " of " +
              std::to_string(tables.size()) + ": " +
              input.status().message()));
    }
    serialized.push_back(std::move(input).value());
  }
  Metrics().batches->Increment();
  Metrics().tables->Increment(tables.size());
  for (const table::Table& table : tables) {
    Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  }

  FanOut(tables.size(), [&](DoduoModel* model, size_t t) {
    fn(model, t, serialized[t]);
  });
  return util::Status::Ok();
}

void Annotator::FanOut(
    size_t count, const std::function<void(DoduoModel*, size_t)>& fn) const {
  util::ThreadPool* pool = util::ComputePool();
  size_t replicas_wanted =
      std::min<size_t>(static_cast<size_t>(pool->num_threads()), count);
  if (max_batch_replicas_ > 0) {
    replicas_wanted = std::min<size_t>(
        replicas_wanted, static_cast<size_t>(max_batch_replicas_));
  }
  if (replicas_wanted <= 1 || util::ThreadPool::InWorker()) {
    for (size_t t = 0; t < count; ++t) {
      fn(model_, t);
    }
    return;
  }

  // The forward pass caches state in the model, so concurrent tables need
  // separate replicas. ReplicaPool snapshots the weights once into an
  // immutable shared copy and materializes the replicas from it; replica 0
  // is the primary model itself (the caller's ParallelFor chunk).
  const ReplicaPool replicas(model_, serializer_, type_vocab_,
                             relation_vocab_,
                             static_cast<int>(replicas_wanted));

  const size_t stride = replicas_wanted;
  pool->ParallelFor(
      0, static_cast<int64_t>(replicas_wanted), /*grain=*/1,
      [&](int64_t replica_begin, int64_t replica_end) {
        for (int64_t r = replica_begin; r < replica_end; ++r) {
          DoduoModel* model = replicas.model(static_cast<int>(r));
          for (size_t t = static_cast<size_t>(r); t < count; t += stride) {
            fn(model, t);
          }
        }
      });
}

bool WarnIfBatchClampedToTableCount(size_t num_tables, int pool_threads) {
  if (num_tables == 0 || pool_threads <= 0 ||
      static_cast<size_t>(pool_threads) <= num_tables) {
    return false;
  }
  DODUO_LOG(Warning) << "batch of " << num_tables << " table(s) cannot use "
                     << pool_threads
                     << " compute threads; batch fan-out is clamped to the "
                        "table count and the extra threads stay idle";
  return true;
}

util::Result<std::vector<std::vector<std::vector<std::string>>>>
Annotator::AnnotateTypesBatch(std::span<const table::Table> tables) const {
  std::vector<std::vector<std::vector<std::string>>> results(tables.size());
  const DoduoConfig& config = model_->config();
  util::Status status = ForEachTable(
      tables, [&](DoduoModel* model, size_t index,
                  const table::SerializedTable& input) {
        results[index] =
            DecodeTypeLogits(model->ForwardTypes(input), config, *type_vocab_);
      });
  if (!status.ok()) return status;
  return results;
}

std::vector<ColumnOutcome> Annotator::RobustOutcomes(
    DoduoModel* model, const table::Table& table,
    const AnnotateOptions& options) const {
  const int n = table.num_columns();
  std::vector<ColumnOutcome> outcomes(static_cast<size_t>(n));
  if (n == 0) return outcomes;

  // Classify columns and clean the annotatable ones. On clean input the
  // sanitizer reports no modification and the original table flows through
  // untouched, which keeps labels byte-identical to AnnotateTypes.
  const table::Table* effective = &table;
  table::SanitizeResult sanitized;
  if (options.sanitize) {
    sanitized = table::ColumnSanitizer(options.sanitizer).Sanitize(table);
    if (sanitized.any_modified) effective = &sanitized.table;
    for (int c = 0; c < n; ++c) {
      const table::SkipReason skip =
          sanitized.columns[static_cast<size_t>(c)].skip;
      if (skip != table::SkipReason::kNone) {
        outcomes[static_cast<size_t>(c)].skipped_reason =
            table::SkipReasonName(skip);
        Metrics().skipped_cols->Increment();
      }
    }
  }

  std::vector<int> annotatable;
  annotatable.reserve(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    if (outcomes[static_cast<size_t>(c)].skipped_reason.empty()) {
      annotatable.push_back(c);
    }
  }

  // Tables wider than the token budget are annotated in column chunks
  // instead of failing: capping a chunk at (max_total_tokens - 1) / 2
  // leaves every column its [CLS] plus at least one value token.
  const size_t chunk_cap = static_cast<size_t>(
      std::max(1, (serializer_->options().max_total_tokens - 1) / 2));

  const DoduoConfig& config = model->config();
  for (size_t begin = 0; begin < annotatable.size(); begin += chunk_cap) {
    const size_t end = std::min(annotatable.size(), begin + chunk_cap);
    // The common case — every column annotatable, one chunk — serializes
    // the table itself; only wide or partially skipped tables pay for a
    // column-subset copy.
    table::Table subset;
    const table::Table* chunk = effective;
    if (end - begin != static_cast<size_t>(effective->num_columns())) {
      subset.set_id(effective->id());
      for (size_t i = begin; i < end; ++i) {
        subset.AddColumn(effective->column(annotatable[i]));
      }
      chunk = &subset;
    }
    auto input = serializer_->SerializeTable(*chunk);
    if (!input.ok()) {
      // Unreachable for chunks within the cap, but the robust contract is
      // that no column ever loses its outcome: record it as a skip.
      (void)CountError(input.status());
      for (size_t i = begin; i < end; ++i) {
        ColumnOutcome& outcome = outcomes[static_cast<size_t>(
            annotatable[i])];
        outcome.skipped_reason = "serialize_error";
        Metrics().skipped_cols->Increment();
      }
      continue;
    }
    const nn::Tensor& logits = model->ForwardTypes(input.value());
    std::vector<std::vector<std::string>> labels =
        DecodeTypeLogits(logits, config, *type_vocab_);
    for (size_t i = begin; i < end; ++i) {
      ColumnOutcome& outcome =
          outcomes[static_cast<size_t>(annotatable[i])];
      const int64_t row = static_cast<int64_t>(i - begin);
      outcome.labels = std::move(labels[static_cast<size_t>(row)]);
      outcome.confidence = CalibratedConfidence(
          logits.row(row), logits.cols(), config.calibration_temperature,
          config.multi_label);
      ApplyAbstention(&outcome, options.abstain_below);
    }
  }
  return outcomes;
}

std::vector<ColumnOutcome> Annotator::AnnotateTypesRobust(
    const table::Table& table, const AnnotateOptions& options) const {
  util::ScopedTimer timer(Metrics().annotate_us,
                          "annotator.annotate_robust");
  model_->set_training(false);
  Metrics().tables->Increment();
  Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  return RobustOutcomes(model_, table, options);
}

std::vector<std::vector<ColumnOutcome>> Annotator::AnnotateTypesRobustBatch(
    std::span<const table::Table> tables,
    const AnnotateOptions& options) const {
  util::ScopedTimer timer(Metrics().batch_us, "annotator.batch");
  model_->set_training(false);
  Metrics().batches->Increment();
  Metrics().tables->Increment(tables.size());
  for (const table::Table& table : tables) {
    Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  }
  std::vector<std::vector<ColumnOutcome>> results(tables.size());
  FanOut(tables.size(), [&](DoduoModel* model, size_t index) {
    results[index] = RobustOutcomes(model, tables[index], options);
  });
  return results;
}

util::Result<std::vector<nn::Tensor>> Annotator::ColumnEmbeddingsBatch(
    std::span<const table::Table> tables) const {
  std::vector<nn::Tensor> results(tables.size());
  util::Status status = ForEachTable(
      tables, [&](DoduoModel* model, size_t index,
                  const table::SerializedTable& input) {
        results[index] = model->ColumnEmbeddings(input);
      });
  if (!status.ok()) return status;
  return results;
}

util::Result<std::vector<std::string>> Annotator::AnnotateRelations(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  util::ScopedTimer timer(Metrics().annotate_us,
                          "annotator.annotate_relations");
  if (relation_vocab_ == nullptr) {
    return CountError(util::Status::FailedPrecondition(
        "model was built without a relation head; AnnotateRelations is "
        "unavailable"));
  }
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  util::Status pair_status = ValidatePairs(table, pairs);
  if (!pair_status.ok()) return CountError(std::move(pair_status));
  if (pairs.empty()) return std::vector<std::string>{};
  model_->set_training(false);
  const nn::Tensor& logits = model_->ForwardRelations(input.value(), pairs);
  Metrics().tables->Increment();
  std::vector<std::string> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (z[j] > z[best]) best = j;
    }
    annotations.push_back(relation_vocab_->Name(static_cast<int>(best)));
  }
  return annotations;
}

util::Result<std::vector<std::string>> Annotator::AnnotateKeyRelations(
    const table::Table& table) const {
  if (table.num_columns() == 0) {
    return CountError(util::Status::InvalidArgument(
        "table '" + table.id() + "' has no columns"));
  }
  std::vector<std::pair<int, int>> pairs;
  for (int c = 1; c < table.num_columns(); ++c) pairs.emplace_back(0, c);
  return AnnotateRelations(table, pairs);
}

util::Result<nn::Tensor> Annotator::ColumnEmbeddings(
    const table::Table& table) const {
  util::ScopedTimer timer(Metrics().annotate_us, "annotator.embed");
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  model_->set_training(false);
  Metrics().tables->Increment();
  Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  return model_->ColumnEmbeddings(input.value());
}

util::MetricsSnapshot Annotator::StatsSnapshot() {
  return util::SnapshotMetrics();
}

}  // namespace doduo::core
