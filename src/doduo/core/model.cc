#include "doduo/core/model.h"

#include <algorithm>

#include "doduo/nn/ops.h"
#include "doduo/util/metrics.h"

namespace doduo::core {

namespace {

// Per-stage latency metrics (DESIGN §10); pointers resolved once.
struct ModelMetrics {
  util::Histogram* encoder_forward_us =
      util::GetHistogram("model.encoder_forward_us");
  util::Histogram* heads_us = util::GetHistogram("model.heads_us");
};

ModelMetrics& Metrics() {
  static ModelMetrics metrics;
  return metrics;
}

}  // namespace

MlpHead::MlpHead(const std::string& name, int64_t in_dim, int64_t hidden_dim,
                 int64_t out_dim, util::Rng* rng)
    : dense_(name + ".dense", in_dim, hidden_dim, rng),
      output_(name + ".out", hidden_dim, out_dim, rng) {}

const nn::Tensor& MlpHead::Forward(const nn::Tensor& x) {
  return output_.Forward(activation_.Forward(dense_.Forward(x)));
}

const nn::Tensor& MlpHead::Backward(const nn::Tensor& grad_out) {
  return dense_.Backward(activation_.Backward(output_.Backward(grad_out)));
}

nn::ParameterList MlpHead::Parameters() {
  nn::ParameterList params;
  nn::AppendParameters(dense_.Parameters(), &params);
  nn::AppendParameters(output_.Parameters(), &params);
  return params;
}

DoduoModel::DoduoModel(const DoduoConfig& config, util::Rng* rng)
    : config_(config),
      encoder_("doduo.encoder", config.encoder, rng),
      type_head_("doduo.type_head", config.encoder.hidden_dim,
                 config.encoder.hidden_dim, config.num_types, rng) {
  config_.Validate();
  if (config.num_relations > 0) {
    relation_head_ = std::make_unique<MlpHead>(
        "doduo.rel_head", 2 * config.encoder.hidden_dim,
        config.encoder.hidden_dim, config.num_relations, rng);
  }
}

const nn::Tensor& DoduoModel::Encode(const table::SerializedTable& input) {
  DODUO_CHECK(!input.cls_positions.empty());
  cls_positions_ = input.cls_positions;
  sequence_length_ = static_cast<int64_t>(input.token_ids.size());
  util::ScopedTimer timer(Metrics().encoder_forward_us,
                          "model.encoder_forward");
  if (mask_builder_) {
    const transformer::AttentionMask mask = mask_builder_(input);
    return encoder_.Forward(input.token_ids, &mask);
  }
  return encoder_.Forward(input.token_ids, nullptr);
}

const nn::Tensor& DoduoModel::ForwardTypes(
    const table::SerializedTable& input) {
  const nn::Tensor& hidden = Encode(input);
  const int64_t n = static_cast<int64_t>(cls_positions_.size());
  const int64_t d = hidden.cols();
  cls_embeddings_.ResizeUninitialized({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = hidden.row(cls_positions_[static_cast<size_t>(i)]);
    std::copy(src, src + d, cls_embeddings_.row(i));
  }
  util::ScopedTimer timer(Metrics().heads_us, "model.type_head");
  return type_head_.Forward(cls_embeddings_);
}

const nn::Tensor& DoduoModel::ForwardRelations(
    const table::SerializedTable& input,
    const std::vector<std::pair<int, int>>& pairs) {
  DODUO_CHECK(relation_head_ != nullptr) << "model has no relation head";
  DODUO_CHECK(!pairs.empty());
  const nn::Tensor& hidden = Encode(input);
  pairs_ = pairs;
  const int64_t d = hidden.cols();
  pair_embeddings_.ResizeUninitialized(
      {static_cast<int64_t>(pairs.size()), 2 * d});
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto [a, b] = pairs[p];
    DODUO_CHECK(a >= 0 && a < static_cast<int>(cls_positions_.size()));
    DODUO_CHECK(b >= 0 && b < static_cast<int>(cls_positions_.size()));
    float* dst = pair_embeddings_.row(static_cast<int64_t>(p));
    const float* src_a = hidden.row(cls_positions_[static_cast<size_t>(a)]);
    const float* src_b = hidden.row(cls_positions_[static_cast<size_t>(b)]);
    std::copy(src_a, src_a + d, dst);
    std::copy(src_b, src_b + d, dst + d);
  }
  util::ScopedTimer timer(Metrics().heads_us, "model.relation_head");
  return relation_head_->Forward(pair_embeddings_);
}

void DoduoModel::BackwardTypes(const nn::Tensor& grad_logits) {
  const nn::Tensor& grad_cls = type_head_.Backward(grad_logits);
  const int64_t d = grad_cls.cols();
  grad_hidden_.ResizeUninitialized({sequence_length_, d});
  grad_hidden_.Zero();
  for (size_t i = 0; i < cls_positions_.size(); ++i) {
    const float* src = grad_cls.row(static_cast<int64_t>(i));
    float* dst = grad_hidden_.row(cls_positions_[i]);
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  encoder_.Backward(grad_hidden_);
}

void DoduoModel::BackwardRelations(const nn::Tensor& grad_logits) {
  DODUO_CHECK(relation_head_ != nullptr);
  const nn::Tensor& grad_pairs = relation_head_->Backward(grad_logits);
  const int64_t d = grad_pairs.cols() / 2;
  grad_hidden_.ResizeUninitialized({sequence_length_, d});
  grad_hidden_.Zero();
  // A column (notably the key column) can participate in several pairs;
  // gradients accumulate.
  for (size_t p = 0; p < pairs_.size(); ++p) {
    const auto [a, b] = pairs_[p];
    const float* src = grad_pairs.row(static_cast<int64_t>(p));
    float* dst_a = grad_hidden_.row(cls_positions_[static_cast<size_t>(a)]);
    float* dst_b = grad_hidden_.row(cls_positions_[static_cast<size_t>(b)]);
    for (int64_t j = 0; j < d; ++j) {
      dst_a[j] += src[j];
      dst_b[j] += src[d + j];
    }
  }
  encoder_.Backward(grad_hidden_);
}

nn::Tensor DoduoModel::ColumnEmbeddings(const table::SerializedTable& input) {
  const nn::Tensor& hidden = Encode(input);
  const int64_t n = static_cast<int64_t>(cls_positions_.size());
  const int64_t d = hidden.cols();
  nn::Tensor embeddings({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = hidden.row(cls_positions_[static_cast<size_t>(i)]);
    std::copy(src, src + d, embeddings.row(i));
  }
  return embeddings;
}

nn::Tensor DoduoModel::ColumnAttention(const table::SerializedTable& input) {
  Encode(input);
  const int last_layer = encoder_.num_layers() - 1;
  const std::vector<nn::Tensor>& head_probs =
      encoder_.attention_probs(last_layer);
  DODUO_CHECK(!head_probs.empty());
  const int64_t n = static_cast<int64_t>(cls_positions_.size());
  nn::Tensor attention({n, n});
  for (const nn::Tensor& probs : head_probs) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        attention.at(i, j) +=
            probs.at(cls_positions_[static_cast<size_t>(i)],
                     cls_positions_[static_cast<size_t>(j)]);
      }
    }
  }
  nn::Scale(&attention, 1.0f / static_cast<float>(head_probs.size()));
  return attention;
}

nn::ParameterList DoduoModel::Parameters() {
  nn::ParameterList params = encoder_.Parameters();
  nn::AppendParameters(type_head_.Parameters(), &params);
  if (relation_head_ != nullptr) {
    nn::AppendParameters(relation_head_->Parameters(), &params);
  }
  return params;
}

std::vector<nn::Tensor> DoduoModel::SnapshotWeights() {
  std::vector<nn::Tensor> snapshot;
  for (nn::Parameter* p : Parameters()) snapshot.push_back(p->value);
  return snapshot;
}

void DoduoModel::RestoreWeights(const std::vector<nn::Tensor>& snapshot) {
  nn::ParameterList params = Parameters();
  DODUO_CHECK_EQ(snapshot.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    DODUO_CHECK(nn::SameShape(params[i]->value, snapshot[i]));
    params[i]->value = snapshot[i];
    params[i]->BumpRevision();
  }
}

void DoduoModel::AdoptWeights(
    std::shared_ptr<const std::vector<nn::Tensor>> snapshot) {
  DODUO_CHECK(snapshot != nullptr);
  nn::ParameterList params = Parameters();
  DODUO_CHECK_EQ(snapshot->size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const nn::Tensor& src = (*snapshot)[i];
    DODUO_CHECK(nn::SameShape(params[i]->value, src));
    if (src.borrowed()) {
      // The snapshot entry already aliases shared storage (an mmap-ed v2
      // checkpoint); copying the tensor shares that borrow.
      params[i]->value = src;
    } else {
      // Borrow the snapshot's own buffer; the aliasing shared_ptr pins the
      // whole snapshot vector for as long as any adopter lives.
      params[i]->value = nn::Tensor::Borrowed(
          src.shape(), src.data(),
          std::shared_ptr<const void>(snapshot, snapshot.get()));
    }
    params[i]->BumpRevision();
  }
}

}  // namespace doduo::core
