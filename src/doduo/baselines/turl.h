#ifndef DODUO_BASELINES_TURL_H_
#define DODUO_BASELINES_TURL_H_

#include "doduo/core/model.h"

namespace doduo::baselines {

/// Builds the TURL-style visibility matrix as the DODUO paper describes it
/// (Section 5.4): all cross-column token edges are removed — a cell token
/// attends only within its own column (cells + that column's [CLS]) — and
/// the per-column [CLS] markers remain mutually visible as the only
/// cross-column channel. Plugging this builder into a DoduoModel turns it
/// into the TURL baseline: identical parameters and training procedure,
/// restricted attention. The paper attributes DODUO's advantage over TURL
/// exactly to this architectural delta.
core::AttentionMaskBuilder MakeTurlVisibilityMaskBuilder();

/// Ablation variant closer to TURL's original entity visibility: same
/// column plus same ROW across columns, without the [CLS]↔[CLS] channel.
/// Used by the design-choice ablation bench to separate the structured
/// cross-column channels (row-wise vs [CLS]-mediated vs full attention).
core::AttentionMaskBuilder MakeRowVisibilityMaskBuilder();

/// Exposed for testing: the column index owning each sequence position
/// (-1 for the trailing/inter-column [SEP]s, which stay globally visible).
std::vector<int> ColumnOfPosition(const table::SerializedTable& input);

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_TURL_H_
