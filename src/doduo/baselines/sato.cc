#include "doduo/baselines/sato.h"

#include <cmath>
#include <unordered_set>

#include "doduo/nn/ops.h"
#include "doduo/text/basic_tokenizer.h"

namespace doduo::baselines {

SatoModel::SatoModel(int num_types, Options options)
    : num_types_(num_types),
      options_(options),
      lda_(options.lda),
      sherlock_(num_types, options.sherlock,
                /*extra_feature_dim=*/options.lda.num_topics),
      crf_(num_types, options.crf) {
  DODUO_CHECK(!options.sherlock.multi_label)
      << "Sato supports single-label datasets only (as in the paper)";
}

std::vector<std::string> SatoModel::TableDocument(
    const table::Table& table) {
  text::BasicTokenizer tokenizer;
  std::vector<std::string> tokens;
  for (const table::Column& column : table.columns()) {
    for (const std::string& value : column.values) {
      for (std::string& token : tokenizer.Tokenize(value)) {
        tokens.push_back(std::move(token));
      }
    }
  }
  return tokens;
}

nn::Tensor SatoModel::Unaries(
    const table::Table& table,
    const std::vector<float>& topic_features) const {
  nn::Tensor unaries({table.num_columns(), num_types_});
  for (int c = 0; c < table.num_columns(); ++c) {
    const std::vector<float> logits =
        sherlock_.Predict(table.column(c), topic_features);
    for (int y = 0; y < num_types_; ++y) {
      unaries.at(c, y) = logits[static_cast<size_t>(y)];
    }
  }
  // Log-softmax rows so the unary scale is comparable to the CRF pairwise
  // weights.
  nn::Tensor normalized;
  nn::LogSoftmaxRows(unaries, &normalized);
  return normalized;
}

void SatoModel::Train(const table::ColumnAnnotationDataset& dataset,
                      const table::DatasetSplits& splits) {
  // 1. Fit LDA on the training tables' documents.
  std::vector<std::vector<std::string>> train_documents;
  train_documents.reserve(splits.train.size());
  for (size_t index : splits.train) {
    train_documents.push_back(TableDocument(dataset.tables[index].table));
  }
  lda_.Fit(train_documents);

  // 2. Topic features for every table in the dataset (fitted counts for
  //    training tables, Gibbs inference for the rest).
  topic_features_.assign(dataset.tables.size(), {});
  std::unordered_set<size_t> train_set(splits.train.begin(),
                                       splits.train.end());
  for (size_t d = 0; d < splits.train.size(); ++d) {
    topic_features_[splits.train[d]] = lda_.DocumentTopics(d);
  }
  for (size_t index = 0; index < dataset.tables.size(); ++index) {
    if (train_set.count(index) > 0) continue;
    topic_features_[index] =
        lda_.InferTopics(TableDocument(dataset.tables[index].table));
  }

  // 3. Train the feature model with topic features appended.
  sherlock_.Train(dataset, splits, topic_features_);

  // 4. Train the CRF on the feature model's unaries.
  std::vector<PairwiseCrf::Instance> instances;
  for (size_t index : splits.train) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    PairwiseCrf::Instance instance;
    instance.unaries = Unaries(annotated.table, topic_features_[index]);
    for (const auto& labels : annotated.column_types) {
      instance.labels.push_back(labels[0]);
    }
    instances.push_back(std::move(instance));
  }
  crf_.Train(instances);
}

core::EvalResult SatoModel::EvaluateTypes(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) {
  DODUO_CHECK_EQ(topic_features_.size(), dataset.tables.size())
      << "EvaluateTypes before Train";
  core::EvalResult result;
  for (size_t index : table_indices) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    const nn::Tensor unaries =
        Unaries(annotated.table, topic_features_[index]);
    const std::vector<int> decoded = crf_.Decode(unaries);
    for (size_t c = 0; c < decoded.size(); ++c) {
      result.sets.predicted.push_back({decoded[c]});
      result.sets.actual.push_back(annotated.column_types[c]);
    }
  }
  const auto counts = eval::CountPerClass(result.sets, num_types_);
  result.micro = eval::MicroPrf(counts);
  result.macro = eval::MacroPrf(counts);
  return result;
}

}  // namespace doduo::baselines
