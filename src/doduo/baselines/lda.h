#ifndef DODUO_BASELINES_LDA_H_
#define DODUO_BASELINES_LDA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "doduo/util/rng.h"

namespace doduo::baselines {

/// Latent Dirichlet Allocation trained with collapsed Gibbs sampling. Sato
/// uses an LDA topic vector per table as its "table context" features; this
/// is that substrate, built from scratch.
class Lda {
 public:
  struct Options {
    int num_topics = 16;
    double alpha = 0.5;  // document-topic prior
    double beta = 0.1;   // topic-word prior
    int iterations = 100;
    uint64_t seed = 42;
  };

  explicit Lda(Options options);

  /// Fits the model on documents (each a bag of tokens). Builds the word
  /// index from the training documents.
  void Fit(const std::vector<std::vector<std::string>>& documents);

  /// Topic distribution of a fitted training document.
  std::vector<float> DocumentTopics(size_t document_index) const;

  /// Infers the topic distribution of an unseen document by a few Gibbs
  /// sweeps with the learned topic-word counts held fixed.
  std::vector<float> InferTopics(
      const std::vector<std::string>& document) const;

  int num_topics() const { return options_.num_topics; }
  int vocab_size() const { return static_cast<int>(word_ids_.size()); }

 private:
  int WordId(const std::string& word) const;  // -1 when unseen

  Options options_;
  std::unordered_map<std::string, int> word_ids_;
  // Counts from the fitted corpus.
  std::vector<std::vector<int>> doc_topic_counts_;   // [docs][topics]
  std::vector<std::vector<int>> topic_word_counts_;  // [topics][words]
  std::vector<int> topic_totals_;                    // [topics]
  std::vector<int> doc_lengths_;                     // [docs]
};

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_LDA_H_
