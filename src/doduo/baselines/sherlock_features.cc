#include "doduo/baselines/sherlock_features.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "doduo/util/string_util.h"

namespace doduo::baselines {

namespace {

// Feature layout.
constexpr int kCharDistDim = 40;   // a-z, 0-9, space, punct buckets
constexpr int kStatsDim = 12;      // global statistics
constexpr int kHashedBowDim = 64;  // hashed bag of words
constexpr int kTotalDim = kCharDistDim + kStatsDim + kHashedBowDim;

// a-z → 0..25, 0-9 → 26..35, space → 36, '.'/','/'-' → 37, other punct →
// 38, everything else → 39.
int CharBucket(unsigned char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= '0' && c <= '9') return 26 + (c - '0');
  if (c == ' ') return 36;
  if (c == '.' || c == ',' || c == '-') return 37;
  if (std::ispunct(c)) return 38;
  return 39;
}

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

int SherlockFeatureDim() { return kTotalDim; }

std::vector<float> ExtractSherlockFeatures(const table::Column& column) {
  std::vector<float> features(kTotalDim, 0.0f);
  float* char_dist = features.data();
  float* stats = features.data() + kCharDistDim;
  float* bow = features.data() + kCharDistDim + kStatsDim;

  const auto& values = column.values;
  if (values.empty()) return features;

  int64_t total_chars = 0;
  int64_t digit_chars = 0;
  int64_t alpha_chars = 0;
  int64_t punct_chars = 0;
  int64_t numeric_values = 0;
  int64_t empty_values = 0;
  int64_t total_tokens = 0;
  double length_sum = 0.0;
  double length_sq_sum = 0.0;
  std::unordered_set<std::string> unique(values.begin(), values.end());

  for (const std::string& value : values) {
    if (value.empty()) ++empty_values;
    if (util::LooksNumeric(value)) ++numeric_values;
    length_sum += static_cast<double>(value.size());
    length_sq_sum += static_cast<double>(value.size()) * value.size();
    for (char raw : value) {
      const unsigned char c = static_cast<unsigned char>(raw);
      ++total_chars;
      ++char_dist[CharBucket(c)];
      if (std::isdigit(c)) ++digit_chars;
      if (std::isalpha(c)) ++alpha_chars;
      if (std::ispunct(c)) ++punct_chars;
    }
    const auto tokens = util::SplitWhitespace(value);
    total_tokens += static_cast<int64_t>(tokens.size());
    for (const std::string& token : tokens) {
      bow[Fnv1a(util::ToLower(token)) % kHashedBowDim] += 1.0f;
    }
  }

  // Normalize the character distribution and the bag of words.
  if (total_chars > 0) {
    for (int i = 0; i < kCharDistDim; ++i) {
      char_dist[i] /= static_cast<float>(total_chars);
    }
  }
  if (total_tokens > 0) {
    for (int i = 0; i < kHashedBowDim; ++i) {
      bow[i] /= static_cast<float>(total_tokens);
    }
  }

  const double n = static_cast<double>(values.size());
  const double mean_length = length_sum / n;
  const double var_length =
      std::max(0.0, length_sq_sum / n - mean_length * mean_length);
  stats[0] = static_cast<float>(std::log1p(n));
  stats[1] = static_cast<float>(mean_length / 32.0);
  stats[2] = static_cast<float>(std::sqrt(var_length) / 16.0);
  stats[3] = static_cast<float>(static_cast<double>(numeric_values) / n);
  stats[4] = static_cast<float>(static_cast<double>(unique.size()) / n);
  stats[5] = static_cast<float>(static_cast<double>(empty_values) / n);
  stats[6] = total_chars > 0 ? static_cast<float>(
                                   static_cast<double>(digit_chars) /
                                   static_cast<double>(total_chars))
                             : 0.0f;
  stats[7] = total_chars > 0 ? static_cast<float>(
                                   static_cast<double>(alpha_chars) /
                                   static_cast<double>(total_chars))
                             : 0.0f;
  stats[8] = total_chars > 0 ? static_cast<float>(
                                   static_cast<double>(punct_chars) /
                                   static_cast<double>(total_chars))
                             : 0.0f;
  stats[9] = static_cast<float>(static_cast<double>(total_tokens) / n / 8.0);
  // Fraction of values starting with a digit; fraction all-lowercase.
  int64_t starts_digit = 0;
  int64_t has_space = 0;
  for (const std::string& value : values) {
    if (!value.empty() &&
        std::isdigit(static_cast<unsigned char>(value[0]))) {
      ++starts_digit;
    }
    if (value.find(' ') != std::string::npos) ++has_space;
  }
  stats[10] = static_cast<float>(static_cast<double>(starts_digit) / n);
  stats[11] = static_cast<float>(static_cast<double>(has_space) / n);

  return features;
}

}  // namespace doduo::baselines
