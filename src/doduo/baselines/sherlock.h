#ifndef DODUO_BASELINES_SHERLOCK_H_
#define DODUO_BASELINES_SHERLOCK_H_

#include <memory>
#include <vector>

#include "doduo/baselines/sherlock_features.h"
#include "doduo/core/trainer.h"  // EvalResult
#include "doduo/nn/linear.h"
#include "doduo/nn/activations.h"
#include "doduo/table/dataset.h"

namespace doduo::baselines {

/// Settings shared by the Sherlock and Sato baselines.
struct SherlockOptions {
  int hidden_dim = 128;
  int epochs = 30;
  int batch_size = 16;
  double learning_rate = 1e-3;
  float dropout = 0.2f;
  bool multi_label = false;
  uint64_t seed = 42;
};

/// The Sherlock baseline: a per-column feature vector (see
/// sherlock_features.h) fed through a two-hidden-layer MLP. Single-column
/// by construction — it never sees table context, which is exactly its
/// role in the paper's comparisons.
class SherlockModel {
 public:
  /// `extra_feature_dim` extends the input (Sato appends LDA topic
  /// features).
  SherlockModel(int num_types, SherlockOptions options,
                int extra_feature_dim = 0);

  /// Trains on the columns of the training tables. `extra_features[t]` (may
  /// be empty) is appended to every column of table t.
  void Train(const table::ColumnAnnotationDataset& dataset,
             const table::DatasetSplits& splits,
             const std::vector<std::vector<float>>& extra_features = {});

  /// Per-class logits for one column.
  std::vector<float> Predict(const table::Column& column,
                             const std::vector<float>& extra) const;

  /// Evaluates type prediction over the given tables.
  core::EvalResult EvaluateTypes(
      const table::ColumnAnnotationDataset& dataset,
      const std::vector<size_t>& table_indices,
      const std::vector<std::vector<float>>& extra_features = {});

  int num_types() const { return num_types_; }

 private:
  nn::Tensor FeatureRow(const table::Column& column,
                        const std::vector<float>& extra) const;

  int num_types_;
  int input_dim_;
  SherlockOptions options_;
  util::Rng rng_;
  std::unique_ptr<nn::Linear> layer1_;
  std::unique_ptr<nn::Relu> act1_;
  std::unique_ptr<nn::Linear> layer2_;
  std::unique_ptr<nn::Relu> act2_;
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_SHERLOCK_H_
