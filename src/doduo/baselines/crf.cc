#include "doduo/baselines/crf.h"

#include <algorithm>
#include <cmath>

#include "doduo/util/check.h"

namespace doduo::baselines {

PairwiseCrf::PairwiseCrf(int num_labels, Options options)
    : num_labels_(num_labels),
      options_(options),
      pairwise_({num_labels, num_labels}) {
  DODUO_CHECK_GT(num_labels, 0);
}

float PairwiseCrf::PairwiseWeight(int a, int b) const {
  DODUO_DCHECK(a >= 0 && a < num_labels_);
  DODUO_DCHECK(b >= 0 && b < num_labels_);
  // Symmetric: stored once, read both ways.
  return pairwise_.at(std::min(a, b), std::max(a, b));
}

void PairwiseCrf::ConditionalScores(const nn::Tensor& unaries,
                                    const std::vector<int>& labels,
                                    size_t i,
                                    std::vector<double>* scores) const {
  scores->assign(static_cast<size_t>(num_labels_), 0.0);
  for (int y = 0; y < num_labels_; ++y) {
    double score = unaries.at(static_cast<int64_t>(i), y);
    for (size_t j = 0; j < labels.size(); ++j) {
      if (j == i) continue;
      score += static_cast<double>(PairwiseWeight(y, labels[j]));
    }
    (*scores)[static_cast<size_t>(y)] = score;
  }
}

void PairwiseCrf::Train(const std::vector<Instance>& instances) {
  DODUO_CHECK(!instances.empty());
  util::Rng rng(options_.seed);
  std::vector<size_t> order(instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto bump = [&](int a, int b, float delta) {
    pairwise_.at(std::min(a, b), std::max(a, b)) += delta;
  };

  std::vector<double> scores;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const float lr = static_cast<float>(
        options_.learning_rate / (1.0 + 0.5 * epoch));
    for (size_t idx : order) {
      const Instance& instance = instances[idx];
      const size_t n = instance.labels.size();
      if (n < 2) continue;  // no pairwise structure to learn from
      DODUO_CHECK_EQ(instance.unaries.rows(), static_cast<int64_t>(n));
      // Pseudo-likelihood gradient: for each column, push up the gold
      // label's pairwise links and push down the expected ones.
      for (size_t i = 0; i < n; ++i) {
        ConditionalScores(instance.unaries, instance.labels, i, &scores);
        // Softmax over scores.
        double max_score = scores[0];
        for (double s : scores) max_score = std::max(max_score, s);
        double z = 0.0;
        for (double s : scores) z += std::exp(s - max_score);
        const int gold = instance.labels[i];
        for (int y = 0; y < num_labels_; ++y) {
          const double p =
              std::exp(scores[static_cast<size_t>(y)] - max_score) / z;
          const double target = (y == gold) ? 1.0 : 0.0;
          const float delta = lr * static_cast<float>(target - p);
          if (delta == 0.0f) continue;
          for (size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            bump(y, instance.labels[j], delta);
          }
        }
      }
    }
    // L2 shrinkage keeps the pairwise matrix from dominating unaries.
    if (options_.l2 > 0.0) {
      const float shrink = static_cast<float>(1.0 - options_.l2);
      for (int64_t i = 0; i < pairwise_.size(); ++i) {
        pairwise_.data()[i] *= shrink;
      }
    }
  }
}

std::vector<int> PairwiseCrf::Decode(const nn::Tensor& unaries) const {
  const int64_t n = unaries.rows();
  DODUO_CHECK_EQ(unaries.cols(), num_labels_);
  // Initialize at the unary argmax.
  std::vector<int> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = unaries.row(i);
    labels[static_cast<size_t>(i)] = static_cast<int>(
        std::max_element(row, row + num_labels_) - row);
  }
  if (n < 2) return labels;

  // Iterated conditional modes.
  std::vector<double> scores;
  constexpr int kMaxSweeps = 10;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool changed = false;
    for (size_t i = 0; i < labels.size(); ++i) {
      ConditionalScores(unaries, labels, i, &scores);
      const int best = static_cast<int>(
          std::max_element(scores.begin(), scores.end()) - scores.begin());
      if (best != labels[i]) {
        labels[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return labels;
}

}  // namespace doduo::baselines
