#include "doduo/baselines/lda.h"

#include "doduo/util/check.h"

namespace doduo::baselines {

Lda::Lda(Options options) : options_(options) {
  DODUO_CHECK_GT(options.num_topics, 0);
  DODUO_CHECK_GT(options.iterations, 0);
}

int Lda::WordId(const std::string& word) const {
  auto it = word_ids_.find(word);
  return it != word_ids_.end() ? it->second : -1;
}

void Lda::Fit(const std::vector<std::vector<std::string>>& documents) {
  DODUO_CHECK(!documents.empty());
  util::Rng rng(options_.seed);
  const int k = options_.num_topics;

  // Word index.
  std::vector<std::vector<int>> docs;
  docs.reserve(documents.size());
  for (const auto& document : documents) {
    std::vector<int> ids;
    ids.reserve(document.size());
    for (const std::string& word : document) {
      auto [it, inserted] =
          word_ids_.emplace(word, static_cast<int>(word_ids_.size()));
      ids.push_back(it->second);
    }
    docs.push_back(std::move(ids));
  }
  const int v = vocab_size();
  DODUO_CHECK_GT(v, 0);

  // Count tables and random topic initialization.
  doc_topic_counts_.assign(docs.size(), std::vector<int>(k, 0));
  topic_word_counts_.assign(static_cast<size_t>(k),
                            std::vector<int>(v, 0));
  topic_totals_.assign(static_cast<size_t>(k), 0);
  doc_lengths_.assign(docs.size(), 0);
  std::vector<std::vector<int>> assignments(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    assignments[d].resize(docs[d].size());
    doc_lengths_[d] = static_cast<int>(docs[d].size());
    for (size_t i = 0; i < docs[d].size(); ++i) {
      const int topic = static_cast<int>(rng.NextUint64(k));
      assignments[d][i] = topic;
      ++doc_topic_counts_[d][static_cast<size_t>(topic)];
      ++topic_word_counts_[static_cast<size_t>(topic)]
                          [static_cast<size_t>(docs[d][i])];
      ++topic_totals_[static_cast<size_t>(topic)];
    }
  }

  // Collapsed Gibbs sweeps.
  std::vector<double> weights(static_cast<size_t>(k));
  const double vbeta = static_cast<double>(v) * options_.beta;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (size_t i = 0; i < docs[d].size(); ++i) {
        const int word = docs[d][i];
        const int old_topic = assignments[d][i];
        --doc_topic_counts_[d][static_cast<size_t>(old_topic)];
        --topic_word_counts_[static_cast<size_t>(old_topic)]
                            [static_cast<size_t>(word)];
        --topic_totals_[static_cast<size_t>(old_topic)];

        for (int t = 0; t < k; ++t) {
          const double doc_part =
              doc_topic_counts_[d][static_cast<size_t>(t)] + options_.alpha;
          const double word_part =
              (topic_word_counts_[static_cast<size_t>(t)]
                                 [static_cast<size_t>(word)] +
               options_.beta) /
              (topic_totals_[static_cast<size_t>(t)] + vbeta);
          weights[static_cast<size_t>(t)] = doc_part * word_part;
        }
        const int new_topic = static_cast<int>(rng.Categorical(weights));
        assignments[d][i] = new_topic;
        ++doc_topic_counts_[d][static_cast<size_t>(new_topic)];
        ++topic_word_counts_[static_cast<size_t>(new_topic)]
                            [static_cast<size_t>(word)];
        ++topic_totals_[static_cast<size_t>(new_topic)];
      }
    }
  }
}

std::vector<float> Lda::DocumentTopics(size_t document_index) const {
  DODUO_CHECK_LT(document_index, doc_topic_counts_.size());
  const int k = options_.num_topics;
  std::vector<float> theta(static_cast<size_t>(k));
  const double denom =
      doc_lengths_[document_index] + k * options_.alpha;
  for (int t = 0; t < k; ++t) {
    theta[static_cast<size_t>(t)] = static_cast<float>(
        (doc_topic_counts_[document_index][static_cast<size_t>(t)] +
         options_.alpha) /
        denom);
  }
  return theta;
}

std::vector<float> Lda::InferTopics(
    const std::vector<std::string>& document) const {
  const int k = options_.num_topics;
  const int v = vocab_size();
  DODUO_CHECK_GT(v, 0) << "InferTopics before Fit";
  util::Rng rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);

  // Known words only.
  std::vector<int> words;
  for (const std::string& word : document) {
    const int id = WordId(word);
    if (id >= 0) words.push_back(id);
  }
  std::vector<int> counts(static_cast<size_t>(k), 0);
  if (words.empty()) {
    // Uniform distribution for fully unseen documents.
    return std::vector<float>(static_cast<size_t>(k),
                              1.0f / static_cast<float>(k));
  }

  std::vector<int> assignments(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    assignments[i] = static_cast<int>(rng.NextUint64(k));
    ++counts[static_cast<size_t>(assignments[i])];
  }
  std::vector<double> weights(static_cast<size_t>(k));
  const double vbeta = static_cast<double>(v) * options_.beta;
  constexpr int kInferenceSweeps = 20;
  for (int iter = 0; iter < kInferenceSweeps; ++iter) {
    for (size_t i = 0; i < words.size(); ++i) {
      --counts[static_cast<size_t>(assignments[i])];
      for (int t = 0; t < k; ++t) {
        const double doc_part =
            counts[static_cast<size_t>(t)] + options_.alpha;
        const double word_part =
            (topic_word_counts_[static_cast<size_t>(t)]
                               [static_cast<size_t>(words[i])] +
             options_.beta) /
            (topic_totals_[static_cast<size_t>(t)] + vbeta);
        weights[static_cast<size_t>(t)] = doc_part * word_part;
      }
      assignments[i] = static_cast<int>(rng.Categorical(weights));
      ++counts[static_cast<size_t>(assignments[i])];
    }
  }
  std::vector<float> theta(static_cast<size_t>(k));
  const double denom =
      static_cast<double>(words.size()) + k * options_.alpha;
  for (int t = 0; t < k; ++t) {
    theta[static_cast<size_t>(t)] = static_cast<float>(
        (counts[static_cast<size_t>(t)] + options_.alpha) / denom);
  }
  return theta;
}

}  // namespace doduo::baselines
