#ifndef DODUO_BASELINES_SHERLOCK_FEATURES_H_
#define DODUO_BASELINES_SHERLOCK_FEATURES_H_

#include <vector>

#include "doduo/table/table.h"

namespace doduo::baselines {

/// Dimensionality of the Sherlock-style feature vector (see .cc for the
/// layout: character distribution + global statistics + hashed
/// bag-of-words block standing in for aggregated word embeddings).
int SherlockFeatureDim();

/// Extracts the per-column feature vector of the Sherlock baseline
/// (Hulsebos et al., KDD'19): character-distribution features, global
/// statistics (lengths, uniqueness, numeric fraction, ...), and an
/// aggregated-token-embedding block. The original's pre-trained GloVe /
/// paragraph vectors are substituted with a hashed bag-of-words block,
/// which plays the same role (a fixed-length lexical summary) without an
/// external embedding file.
std::vector<float> ExtractSherlockFeatures(const table::Column& column);

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_SHERLOCK_FEATURES_H_
