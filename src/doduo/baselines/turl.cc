#include "doduo/baselines/turl.h"

#include <unordered_set>

namespace doduo::baselines {

std::vector<int> ColumnOfPosition(const table::SerializedTable& input) {
  std::vector<int> column_of(input.token_ids.size(), -1);
  for (size_t c = 0; c < input.cls_positions.size(); ++c) {
    const size_t begin = static_cast<size_t>(input.cls_positions[c]);
    const size_t end = c + 1 < input.cls_positions.size()
                           ? static_cast<size_t>(input.cls_positions[c + 1])
                           : input.token_ids.size();
    for (size_t p = begin; p < end; ++p) {
      // Separators stay global (-1).
      if (input.token_ids[p] == text::Vocab::kSepId) continue;
      column_of[p] = static_cast<int>(c);
    }
  }
  return column_of;
}

namespace {

core::AttentionMaskBuilder MakeMaskBuilder(bool row_edges, bool cls_edges) {
  return [row_edges, cls_edges](const table::SerializedTable& input) {
    const int64_t s = static_cast<int64_t>(input.token_ids.size());
    const std::vector<int> column_of = ColumnOfPosition(input);
    DODUO_CHECK_EQ(input.row_ids.size(), input.token_ids.size())
        << "serializer did not fill row ids";
    std::unordered_set<int64_t> cls_set(input.cls_positions.begin(),
                                        input.cls_positions.end());

    transformer::AttentionMask mask({s, s});
    for (int64_t i = 0; i < s; ++i) {
      const int col_i = column_of[static_cast<size_t>(i)];
      const int row_i = input.row_ids[static_cast<size_t>(i)];
      const bool i_is_cls = cls_set.count(i) > 0;
      for (int64_t j = 0; j < s; ++j) {
        const int col_j = column_of[static_cast<size_t>(j)];
        const int row_j = input.row_ids[static_cast<size_t>(j)];
        const bool same_column = col_i == col_j;
        const bool same_row = row_edges && row_i >= 0 && row_i == row_j;
        const bool global = col_i == -1 || col_j == -1;
        const bool cls_to_cls =
            cls_edges && i_is_cls && cls_set.count(j) > 0;
        if (!(same_column || same_row || global || cls_to_cls)) {
          mask.at(i, j) = transformer::kAttentionMaskValue;
        }
      }
    }
    return mask;
  };
}

}  // namespace

core::AttentionMaskBuilder MakeTurlVisibilityMaskBuilder() {
  return MakeMaskBuilder(/*row_edges=*/false, /*cls_edges=*/true);
}

core::AttentionMaskBuilder MakeRowVisibilityMaskBuilder() {
  return MakeMaskBuilder(/*row_edges=*/true, /*cls_edges=*/false);
}

}  // namespace doduo::baselines
