#ifndef DODUO_BASELINES_CRF_H_
#define DODUO_BASELINES_CRF_H_

#include <vector>

#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::baselines {

/// Fully-connected pairwise CRF over the columns of one table, the
/// structured-output layer of Sato: unary scores come from the feature
/// model, a learned label-pair compatibility matrix couples every pair of
/// columns in the same table.
///
/// Training maximizes the pseudo-likelihood by SGD; decoding is iterated
/// conditional modes from the unary argmax (tables are small, ICM
/// converges in a couple of sweeps).
class PairwiseCrf {
 public:
  struct Options {
    int epochs = 10;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    uint64_t seed = 42;
  };

  PairwiseCrf(int num_labels, Options options);

  /// One training table: per-column unary log-scores [n, num_labels] and
  /// the gold labels.
  struct Instance {
    nn::Tensor unaries;
    std::vector<int> labels;
  };

  /// Fits the pairwise matrix on the given instances.
  void Train(const std::vector<Instance>& instances);

  /// MAP-ish decoding: ICM from the unary argmax.
  std::vector<int> Decode(const nn::Tensor& unaries) const;

  /// Pairwise compatibility weight between two labels.
  float PairwiseWeight(int a, int b) const;

 private:
  /// Conditional distribution of column i's label given the rest.
  void ConditionalScores(const nn::Tensor& unaries,
                         const std::vector<int>& labels, size_t i,
                         std::vector<double>* scores) const;

  int num_labels_;
  Options options_;
  nn::Tensor pairwise_;  // [num_labels, num_labels], symmetric use
};

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_CRF_H_
