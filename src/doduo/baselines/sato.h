#ifndef DODUO_BASELINES_SATO_H_
#define DODUO_BASELINES_SATO_H_

#include <vector>

#include "doduo/baselines/crf.h"
#include "doduo/baselines/lda.h"
#include "doduo/baselines/sherlock.h"

namespace doduo::baselines {

/// The Sato baseline (Zhang et al., VLDB'20): Sherlock's per-column
/// features augmented with an LDA topic vector of the whole table (coarse
/// table context), plus a pairwise CRF over the columns of each table
/// (structured output). Single-label only, matching its use on VizNet.
class SatoModel {
 public:
  struct Options {
    Lda::Options lda;
    SherlockOptions sherlock;
    PairwiseCrf::Options crf;
  };

  SatoModel(int num_types, Options options);

  void Train(const table::ColumnAnnotationDataset& dataset,
             const table::DatasetSplits& splits);

  core::EvalResult EvaluateTypes(
      const table::ColumnAnnotationDataset& dataset,
      const std::vector<size_t>& table_indices);

 private:
  /// All cell tokens of a table (the LDA "document").
  static std::vector<std::string> TableDocument(const table::Table& table);

  /// Per-column unary log-scores of one table [n, num_types].
  nn::Tensor Unaries(const table::Table& table,
                     const std::vector<float>& topic_features) const;

  int num_types_;
  Options options_;
  Lda lda_;
  SherlockModel sherlock_;
  PairwiseCrf crf_;
  /// Topic features per dataset table index, filled by Train.
  std::vector<std::vector<float>> topic_features_;
};

}  // namespace doduo::baselines

#endif  // DODUO_BASELINES_SATO_H_
