#include "doduo/baselines/sherlock.h"

#include <algorithm>

#include "doduo/nn/losses.h"
#include "doduo/nn/ops.h"
#include "doduo/nn/optimizer.h"

namespace doduo::baselines {

SherlockModel::SherlockModel(int num_types, SherlockOptions options,
                             int extra_feature_dim)
    : num_types_(num_types),
      input_dim_(SherlockFeatureDim() + extra_feature_dim),
      options_(options),
      rng_(options.seed) {
  DODUO_CHECK_GT(num_types, 0);
  layer1_ = std::make_unique<nn::Linear>("sherlock.l1", input_dim_,
                                         options_.hidden_dim, &rng_);
  act1_ = std::make_unique<nn::Relu>();
  layer2_ = std::make_unique<nn::Linear>("sherlock.l2", options_.hidden_dim,
                                         options_.hidden_dim, &rng_);
  act2_ = std::make_unique<nn::Relu>();
  output_ = std::make_unique<nn::Linear>("sherlock.out",
                                         options_.hidden_dim, num_types,
                                         &rng_);
}

nn::Tensor SherlockModel::FeatureRow(const table::Column& column,
                                     const std::vector<float>& extra) const {
  std::vector<float> features = ExtractSherlockFeatures(column);
  features.insert(features.end(), extra.begin(), extra.end());
  DODUO_CHECK_EQ(static_cast<int>(features.size()), input_dim_);
  return nn::Tensor::FromVector({1, input_dim_}, std::move(features));
}

void SherlockModel::Train(
    const table::ColumnAnnotationDataset& dataset,
    const table::DatasetSplits& splits,
    const std::vector<std::vector<float>>& extra_features) {
  // Materialize (feature, label-set) examples for all training columns.
  struct Example {
    nn::Tensor features;  // [1, input_dim]
    std::vector<int> labels;
  };
  std::vector<Example> examples;
  static const std::vector<float> kNoExtra;
  for (size_t index : splits.train) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    const std::vector<float>& extra =
        extra_features.empty() ? kNoExtra : extra_features[index];
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      examples.push_back(
          {FeatureRow(annotated.table.column(c), extra),
           annotated.column_types[static_cast<size_t>(c)]});
    }
  }
  DODUO_CHECK(!examples.empty());

  nn::ParameterList params;
  for (nn::Linear* layer : {layer1_.get(), layer2_.get(), output_.get()}) {
    nn::AppendParameters(layer->Parameters(), &params);
  }
  nn::AdamOptions adam_options;
  adam_options.learning_rate = options_.learning_rate;
  nn::Adam adam(params, adam_options);

  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    int in_batch = 0;
    for (size_t idx : order) {
      const Example& example = examples[idx];
      const nn::Tensor& hidden1 = act1_->Forward(
          layer1_->Forward(example.features));
      const nn::Tensor& hidden2 = act2_->Forward(layer2_->Forward(hidden1));
      const nn::Tensor& logits = output_->Forward(hidden2);

      nn::LossResult loss;
      if (options_.multi_label) {
        nn::Tensor targets({1, num_types_});
        for (int label : example.labels) targets.at(0, label) = 1.0f;
        loss = nn::BinaryCrossEntropyWithLogits(logits, targets, {});
      } else {
        loss = nn::SoftmaxCrossEntropy(logits, {example.labels[0]});
      }
      nn::Scale(&loss.grad_logits,
                1.0f / static_cast<float>(options_.batch_size));
      layer1_->Backward(
          act1_->Backward(layer2_->Backward(
              act2_->Backward(output_->Backward(loss.grad_logits)))));
      if (++in_batch == options_.batch_size) {
        adam.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.Step();
  }
}

std::vector<float> SherlockModel::Predict(
    const table::Column& column, const std::vector<float>& extra) const {
  const nn::Tensor features = FeatureRow(column, extra);
  nn::Tensor hidden1, hidden2, logits;
  layer1_->ForwardInto(features, &hidden1);
  for (int64_t i = 0; i < hidden1.size(); ++i) {
    hidden1.data()[i] = std::max(0.0f, hidden1.data()[i]);
  }
  layer2_->ForwardInto(hidden1, &hidden2);
  for (int64_t i = 0; i < hidden2.size(); ++i) {
    hidden2.data()[i] = std::max(0.0f, hidden2.data()[i]);
  }
  output_->ForwardInto(hidden2, &logits);
  return std::vector<float>(logits.data(), logits.data() + logits.size());
}

core::EvalResult SherlockModel::EvaluateTypes(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices,
    const std::vector<std::vector<float>>& extra_features) {
  static const std::vector<float> kNoExtra;
  core::EvalResult result;
  for (size_t index : table_indices) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    const std::vector<float>& extra =
        extra_features.empty() ? kNoExtra : extra_features[index];
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      const std::vector<float> logits =
          Predict(annotated.table.column(c), extra);
      std::vector<int> predicted;
      if (options_.multi_label) {
        int best = 0;
        for (int j = 0; j < num_types_; ++j) {
          if (logits[static_cast<size_t>(j)] > 0.0f) predicted.push_back(j);
          if (logits[static_cast<size_t>(j)] >
              logits[static_cast<size_t>(best)]) {
            best = j;
          }
        }
        if (predicted.empty()) predicted.push_back(best);
      } else {
        predicted.push_back(static_cast<int>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin()));
      }
      result.sets.predicted.push_back(std::move(predicted));
      result.sets.actual.push_back(
          annotated.column_types[static_cast<size_t>(c)]);
    }
  }
  const auto counts = eval::CountPerClass(result.sets, num_types_);
  result.micro = eval::MicroPrf(counts);
  result.macro = eval::MacroPrf(counts);
  return result;
}

}  // namespace doduo::baselines
