#include "doduo/util/table_printer.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DODUO_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DODUO_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') +
              " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(header_);
  out += "|";
  for (size_t width : widths) out += std::string(width + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace doduo::util
