#ifndef DODUO_UTIL_TABLE_PRINTER_H_
#define DODUO_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace doduo::util {

/// Renders aligned, Markdown-style console tables for the experiment
/// binaries (the "paper table" output).
///
///   TablePrinter printer({"Method", "P", "R", "F1"});
///   printer.AddRow({"Doduo", "92.69", "92.21", "92.45"});
///   std::cout << printer.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one body row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator and column alignment.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace doduo::util

#endif  // DODUO_UTIL_TABLE_PRINTER_H_
