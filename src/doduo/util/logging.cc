#include "doduo/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace doduo::util {

namespace {

LogLevel InitialLevel() {
  // getenv races only with env *mutation*, and nothing in the process
  // calls setenv/putenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("DODUO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

// Last path component, to keep log lines short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load());
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= LevelStore().load()), level_(level) {
  if (enabled_) {
    stream_ << LevelTag(level) << " [" << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ >= LogLevel::kWarning) std::fflush(stderr);
}

}  // namespace internal_logging

}  // namespace doduo::util
