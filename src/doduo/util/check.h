#ifndef DODUO_UTIL_CHECK_H_
#define DODUO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Fatal assertion macros for programmer errors. The project does not use
// exceptions (see DESIGN.md); invariant violations abort with a message that
// names the failing expression and source location.
//
//   DODUO_CHECK(cond) << "extra context " << value;
//   DODUO_CHECK_EQ(a, b);
//
// DODUO_DCHECK* short-circuit to no-ops in NDEBUG builds (operands are not
// evaluated).

namespace doduo::util {

namespace internal_check {

// Accumulates the streamed message and aborts in the destructor. Used only
// via the macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* expr, const char* file, int line) {
    stream_ << "CHECK failed: " << expr << " at " << file << ":" << line;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the stream expression into void so the ternary in the macros type
// checks (glog's "voidify" trick). operator& binds looser than <<, so the
// whole message chain is built first.
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check

}  // namespace doduo::util

#define DODUO_CHECK(cond)                                         \
  (cond) ? (void)0                                                \
         : ::doduo::util::internal_check::Voidify() &             \
               ::doduo::util::internal_check::CheckFailureStream( \
                   #cond, __FILE__, __LINE__)

#define DODUO_CHECK_OP(op, a, b)                                  \
  ((a)op(b)) ? (void)0                                            \
             : ::doduo::util::internal_check::Voidify() &         \
                   ::doduo::util::internal_check::CheckFailureStream( \
                       #a " " #op " " #b, __FILE__, __LINE__)     \
                       << "(" << (a) << " vs " << (b) << ")"

#define DODUO_CHECK_EQ(a, b) DODUO_CHECK_OP(==, a, b)
#define DODUO_CHECK_NE(a, b) DODUO_CHECK_OP(!=, a, b)
#define DODUO_CHECK_LT(a, b) DODUO_CHECK_OP(<, a, b)
#define DODUO_CHECK_LE(a, b) DODUO_CHECK_OP(<=, a, b)
#define DODUO_CHECK_GT(a, b) DODUO_CHECK_OP(>, a, b)
#define DODUO_CHECK_GE(a, b) DODUO_CHECK_OP(>=, a, b)

#ifdef NDEBUG
// `true || (x)` keeps the operands syntactically alive (no unused-variable
// warnings in templates) without evaluating them.
#define DODUO_DCHECK(cond) DODUO_CHECK(true || (cond))
#define DODUO_DCHECK_EQ(a, b) DODUO_DCHECK((a) == (b))
#define DODUO_DCHECK_LT(a, b) DODUO_DCHECK((a) < (b))
#define DODUO_DCHECK_LE(a, b) DODUO_DCHECK((a) <= (b))
#else
#define DODUO_DCHECK(cond) DODUO_CHECK(cond)
#define DODUO_DCHECK_EQ(a, b) DODUO_CHECK_EQ(a, b)
#define DODUO_DCHECK_LT(a, b) DODUO_CHECK_LT(a, b)
#define DODUO_DCHECK_LE(a, b) DODUO_CHECK_LE(a, b)
#endif

#endif  // DODUO_UTIL_CHECK_H_
