#include "doduo/util/rng.h"

#include <cmath>
#include <numbers>

namespace doduo::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  DODUO_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DODUO_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

float Rng::UniformFloat(float lo, float hi) {
  return static_cast<float>(UniformDouble(lo, hi));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  DODUO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DODUO_DCHECK(w >= 0.0);
    total += w;
  }
  DODUO_CHECK_GT(total, 0.0) << "Categorical requires a positive weight";
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  // Floating-point round-off: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  DODUO_CHECK_LE(k, n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextUint64(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace doduo::util
