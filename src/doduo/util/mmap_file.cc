#include "doduo/util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DODUO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DODUO_HAVE_MMAP 0
#endif

#include "doduo/util/env.h"

namespace doduo::util {

namespace {

// The fallback is also the escape hatch for filesystems where mmap is slow
// or unreliable (network mounts): DODUO_MMAP=0 forces it. Read per Open so
// tests can toggle both paths in one process.
bool MmapAllowed() { return GetEnvInt("DODUO_MMAP", 1) != 0; }

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(size));
  }
  if (!in) return Status::IoError("failed reading " + path);
  return Status::Ok();
}

}  // namespace

MmapFile::~MmapFile() {
#if DODUO_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  // make_shared needs a public constructor, so allocate via new-in-shared_ptr.
  std::shared_ptr<MmapFile> file(new MmapFile());
#if DODUO_HAVE_MMAP
  if (MmapAllowed()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("cannot stat " + path + ": " + err);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return file;  // empty file: data() == nullptr, size() == 0
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps its own reference to the file
    if (map == MAP_FAILED) {
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(errno));
    }
    file->data_ = static_cast<const uint8_t*>(map);
    file->size_ = size;
    file->mapped_ = true;
    return file;
  }
#endif
  if (Status read = ReadWholeFile(path, &file->fallback_); !read.ok()) {
    return read;
  }
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  return file;
}

}  // namespace doduo::util
