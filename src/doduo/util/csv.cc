#include "doduo/util/csv.h"

#include <fstream>
#include <sstream>

namespace doduo::util {

Result<CsvRows> ParseCsv(std::string_view text) {
  // Strip a leading UTF-8 byte-order mark: spreadsheet exports routinely
  // prepend one, and without this the BOM bytes would be glued onto the
  // first header name (corrupting every lookup of that column).
  if (text.size() >= 3 && text[0] == '\xEF' && text[1] == '\xBB' &&
      text[2] == '\xBF') {
    text.remove_prefix(3);
  }
  CsvRows rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // True once the current row has any content.
  bool quote_closed = false;  // A quoted cell just ended; only a delimiter
                              // (comma, newline, EOF) may follow (RFC 4180).

  auto end_cell = [&]() {
    row.push_back(std::move(cell));
    cell.clear();
    quote_closed = false;
  };
  auto end_row = [&]() {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
    cell_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          quote_closed = true;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    if (quote_closed && c != ',' && c != '\r' && c != '\n') {
      return Status::InvalidArgument(
          "text after closing quote in cell " + std::to_string(row.size()) +
          " of row " + std::to_string(rows.size()) + " (offset " +
          std::to_string(i) + ", char '" + std::string(1, c) + "')");
    }
    switch (c) {
      case '"':
        if (!cell.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted CSV cell at offset " +
              std::to_string(i));
        }
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;
        break;
      case '\r':
        // Consumed as part of CRLF; a bare CR is treated as a newline too.
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV cell");
  }
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

Result<CsvRows> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

namespace {

bool NeedsQuoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendCell(std::string* out, std::string_view cell) {
  if (!NeedsQuoting(cell)) {
    out->append(cell);
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string WriteCsvString(const CsvRows& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendCell(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvRows& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::string text = WriteCsvString(rows);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

}  // namespace doduo::util
