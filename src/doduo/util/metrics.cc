#include "doduo/util/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "doduo/util/env.h"
#include "doduo/util/mutex.h"
#include "doduo/util/thread_annotations.h"

namespace doduo::util {

namespace {

// Function-local so the flag works from any static-initialization context.
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{GetEnvInt("DODUO_METRICS", 1) != 0};
  return enabled;
}

// Registered metrics live behind unique_ptr so the pointers handed out by
// GetCounter/GetHistogram survive map rehashing and process teardown order.
struct Registry {
  Mutex mutex{"metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      DODUO_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      DODUO_GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

struct TraceState {
  Mutex mutex{"metrics.trace"};
  TraceHook hook DODUO_GUARDED_BY(mutex);
};

std::atomic<bool> g_has_trace_hook{false};

TraceState& GetTraceState() {
  static TraceState* state = new TraceState();  // never destroyed
  return *state;
}

void EmitTrace(const char* span, uint64_t micros) {
  TraceState& state = GetTraceState();
  MutexLock lock(&state.mutex);
  if (state.hook) state.hook(span, micros);
}

void AppendJsonString(std::ostringstream* out, const std::string& text) {
  *out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  if (!EnabledFlag().load(std::memory_order_relaxed)) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t micros) {
  if (!EnabledFlag().load(std::memory_order_relaxed)) return;
  int bucket = 0;
  while (bucket < kNumBuckets - 1 && BucketUpperMicros(bucket) < micros) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

bool MetricsEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

Counter* GetCounter(std::string_view name) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  auto it = registry.counters.find(name);
  if (it == registry.counters.end()) {
    it = registry.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* GetHistogram(std::string_view name) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  auto it = registry.histograms.find(name);
  if (it == registry.histograms.end()) {
    it = registry.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot SnapshotMetrics() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(registry.counters.size());
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.histograms.reserve(registry.histograms.size());
  for (const auto& [name, histogram] : registry.histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum_micros = histogram->sum_micros();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t count = histogram->bucket_count(b);
      if (count > 0) {
        h.buckets.emplace_back(Histogram::BucketUpperMicros(b), count);
      }
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

uint64_t ApproxQuantileMicros(const HistogramSnapshot& histogram, double q) {
  if (histogram.count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th sample, 1-based; q = 0 maps to the first sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(histogram.count))));
  uint64_t seen = 0;
  for (const auto& [upper_micros, count] : histogram.buckets) {
    seen += count;
    if (seen >= rank) return upper_micros;
  }
  // count and the bucket sums can race (relaxed snapshot); fall back to the
  // largest non-empty bucket.
  return histogram.buckets.empty() ? 0 : histogram.buckets.back().first;
}

uint64_t ApproxQuantileMicros(const Histogram& histogram, double q) {
  HistogramSnapshot snapshot;
  snapshot.count = histogram.count();
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t count = histogram.bucket_count(b);
    if (count > 0) {
      snapshot.buckets.emplace_back(Histogram::BucketUpperMicros(b), count);
    }
  }
  return ApproxQuantileMicros(snapshot, q);
}

std::string MetricsToJson() {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ',';
    AppendJsonString(&out, snapshot.counters[i].name);
    out << ':' << snapshot.counters[i].value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) out << ',';
    AppendJsonString(&out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum_us\":" << h.sum_micros
        << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ',';
      out << "[" << h.buckets[b].first << ',' << h.buckets[b].second << "]";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void ResetMetrics() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  for (auto& [name, counter] : registry.counters) counter->Reset();
  for (auto& [name, histogram] : registry.histograms) histogram->Reset();
}

void SetTraceHook(TraceHook hook) {
  TraceState& state = GetTraceState();
  MutexLock lock(&state.mutex);
  state.hook = std::move(hook);
  g_has_trace_hook.store(static_cast<bool>(state.hook),
                         std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram* histogram, const char* span)
    : histogram_(histogram),
      span_(span),
      active_(MetricsEnabled() ||
              g_has_trace_hook.load(std::memory_order_relaxed)) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  if (histogram_ != nullptr) histogram_->Record(micros);
  if (g_has_trace_hook.load(std::memory_order_relaxed)) {
    EmitTrace(span_, micros);
  }
}

}  // namespace doduo::util
