#ifndef DODUO_UTIL_THREAD_POOL_H_
#define DODUO_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "doduo/util/mutex.h"
#include "doduo/util/thread_annotations.h"

namespace doduo::util {

/// A fixed-size thread pool with a single FIFO queue (no work stealing).
/// Workers drain the queue until shutdown; the destructor completes all
/// pending work before joining, so submitted tasks are never dropped.
///
/// The pool is the substrate for data-parallel kernels (see nn/ops.cc) and
/// batched annotation (core/annotator.cc). Determinism contract: ParallelFor
/// only decides *which thread* runs a chunk, never the iteration order
/// inside a chunk, so callers that keep per-element work order fixed get
/// bit-identical results at any thread count.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Completes all pending and running tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Safe to call from worker threads (nested submits do
  /// not deadlock: workers never block on the queue while holding work).
  void Submit(std::function<void()> fn);

  /// Splits [begin, end) into at most num_threads() contiguous chunks of at
  /// least `grain` iterations and runs `fn(chunk_begin, chunk_end)` on the
  /// pool; the calling thread executes the first chunk itself and then
  /// waits. Rethrows the first exception thrown by any chunk (all chunks
  /// still run to completion).
  ///
  /// Runs inline — sequentially on the calling thread — when the range is
  /// empty or fits one grain, when the pool has a single thread, and when
  /// called from inside a pool worker (so nested ParallelFor calls are safe
  /// and can never deadlock).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  static bool InWorker();

 private:
  void WorkerLoop();

  Mutex mutex_{"thread_pool.queue"};
  CondVar work_available_;
  std::deque<std::function<void()>> queue_ DODUO_GUARDED_BY(mutex_);
  bool shutdown_ DODUO_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written only by the constructor
};

/// The process-wide compute pool used by the parallel kernels and the
/// batched Annotator API. Lazily constructed on first use with
/// DODUO_NUM_THREADS workers (default: hardware concurrency, capped at 16).
ThreadPool* ComputePool();

/// Current size of the global compute pool (>= 1).
int ComputeThreads();

/// Rebuilds the global compute pool with `num_threads` workers. A control
/// knob for tests, benchmarks, and the CLI `--threads` flag; must not be
/// called while kernels are executing on the pool.
void SetComputeThreads(int num_threads);

}  // namespace doduo::util

#endif  // DODUO_UTIL_THREAD_POOL_H_
