#ifndef DODUO_UTIL_RNG_H_
#define DODUO_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "doduo/util/check.h"

namespace doduo::util {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**,
/// seeded via splitmix64). Every source of randomness in the project flows
/// through an explicitly seeded Rng so experiments are reproducible.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Index drawn from the (unnormalized, non-negative) weights. At least one
  /// weight must be positive.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle, in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from [0, n) in random order.
  /// Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child generator; changing how one is used does
  /// not perturb the other's stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace doduo::util

#endif  // DODUO_UTIL_RNG_H_
