#include "doduo/util/env.h"

#include <cstdint>
#include <cstdlib>

namespace doduo::util {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

double ExperimentScale() { return GetEnvDouble("DODUO_SCALE", 1.0); }

uint64_t ExperimentSeed() {
  return static_cast<uint64_t>(GetEnvInt("DODUO_SEED", 42));
}

}  // namespace doduo::util
