#include "doduo/util/env.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "doduo/util/logging.h"

namespace doduo::util {

// The three NOLINTNEXTLINE(concurrency-mt-unsafe) below: getenv races only
// with env *mutation* (setenv/putenv), which nothing in the process does.

std::string GetEnvString(const char* name, const std::string& fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  // Require the whole string to parse: "4abc" is a configuration mistake,
  // not a 4. ERANGE covers both overflow to ±HUGE_VAL and underflow to 0.
  if (end == value || *end != '\0' || errno == ERANGE) {
    DODUO_LOG(Warning) << name << "='" << value
                       << "' is not a valid number; using default "
                       << fallback;
    return fallback;
  }
  return parsed;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    DODUO_LOG(Warning) << name << "='" << value
                       << "' is not a valid integer; using default "
                       << fallback;
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double ExperimentScale() { return GetEnvDouble("DODUO_SCALE", 1.0); }

uint64_t ExperimentSeed() {
  return static_cast<uint64_t>(GetEnvInt("DODUO_SEED", 42));
}

}  // namespace doduo::util
