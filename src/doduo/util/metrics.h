#ifndef DODUO_UTIL_METRICS_H_
#define DODUO_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "doduo/util/metric_names.h"

namespace doduo::util {

// Process-wide counters and latency histograms for the annotation pipeline
// (see DESIGN §10). Recording is lock-free (relaxed atomics) and performs no
// heap allocations; registration (GetCounter/GetHistogram) allocates once
// per name and returns a pointer that stays valid for the process lifetime,
// so instrumented call sites resolve their metrics once and then only pay
// an atomic add per event. Recording can be switched off globally
// (SetMetricsEnabled / DODUO_METRICS=0), reducing each event to one relaxed
// load.

/// Monotonic event counter.
class Counter {
 public:
  /// Adds `delta` (no-op while metrics are disabled).
  void Increment(uint64_t delta = 1);

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket latency histogram over microseconds. Bucket `i` counts
/// samples in (2^(i-1), 2^i] µs (bucket 0: [0, 1] µs); the last bucket
/// absorbs everything larger (~134 s and up).
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;

  /// Records one sample (no-op while metrics are disabled).
  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of `bucket` in microseconds.
  static uint64_t BucketUpperMicros(int bucket) {
    return uint64_t{1} << bucket;
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// True when metric recording is on. Initialized from DODUO_METRICS
/// (default on; set DODUO_METRICS=0 to disable).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Returns the registered counter/histogram for `name`, creating it on the
/// first call. The returned pointer never moves or expires.
Counter* GetCounter(std::string_view name);
Histogram* GetHistogram(std::string_view name);

// -- Snapshots & export -----------------------------------------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  /// (inclusive upper bound in µs, sample count) for non-empty buckets only.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;
};

/// Consistent-enough copy of every registered metric, sorted by name.
MetricsSnapshot SnapshotMetrics();

/// Approximate `q`-quantile (q in [0, 1]) of a histogram in microseconds:
/// the inclusive upper bound of the bucket holding the ceil(q * count)-th
/// sample, i.e. an upper estimate no more than 2x the true value (the
/// buckets are power-of-two wide). Returns 0 for an empty histogram. The
/// serving SLO report (bench_serve, DESIGN §12) reads p50/p99 through this.
uint64_t ApproxQuantileMicros(const HistogramSnapshot& histogram, double q);

/// Snapshots `histogram` and computes the quantile directly.
uint64_t ApproxQuantileMicros(const Histogram& histogram, double q);

/// JSON object {"counters": {...}, "histograms": {...}} of the snapshot
/// (doduo_cli --stats and the bench binaries' DODUO_BENCH_METRICS dump).
std::string MetricsToJson();

/// Zeroes every registered metric (tests and benches).
void ResetMetrics();

// -- Tracing ----------------------------------------------------------------

/// Span hook called by every completed ScopedTimer with the span name and
/// elapsed microseconds; an empty function uninstalls it. The hook runs on
/// the recording thread — keep it cheap.
using TraceHook = std::function<void(std::string_view span, uint64_t micros)>;
void SetTraceHook(TraceHook hook);

/// Times a scope into `histogram` and reports it to the trace hook. Skips
/// the clock entirely when metrics are disabled and no hook is installed.
class ScopedTimer {
 public:
  /// `span` must outlive the timer (string literals in practice).
  ScopedTimer(Histogram* histogram, const char* span);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram* histogram_;
  const char* span_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace doduo::util

#endif  // DODUO_UTIL_METRICS_H_
