#include "doduo/util/status.h"

namespace doduo::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace doduo::util
