#ifndef DODUO_UTIL_STRING_UTIL_H_
#define DODUO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace doduo::util {

/// Splits `text` on `delimiter`; consecutive delimiters yield empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on any run of ASCII whitespace; never yields empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and the string is non-empty).
bool IsAsciiDigits(std::string_view text);

/// True if the whole string parses as an integer or decimal number,
/// tolerating one sign, one decimal point, and thousands separators.
bool LooksNumeric(std::string_view text);

/// Formats `value` with `digits` decimal places ("%.*f").
std::string FormatDouble(double value, int digits);

/// Formats a fraction as a percentage with `digits` decimals, e.g. "92.45".
std::string FormatPercent(double fraction, int digits);

/// Number of UTF-8 code points in `text` (counts non-continuation bytes, so
/// each malformed byte counts as one code point rather than derailing).
size_t Utf8Length(std::string_view text);

/// True when `text` is well-formed UTF-8: no truncated or overlong
/// sequences, no surrogate code points, nothing above U+10FFFF.
bool Utf8IsValid(std::string_view text);

/// Copy of `text` with every ill-formed UTF-8 sequence replaced by U+FFFD
/// (one replacement per maximal invalid subsequence, the W3C/WHATWG
/// policy): truncated sequences, stray continuation bytes, overlong
/// encodings, surrogates, and out-of-range code points all repair instead
/// of flowing byte-sliced into downstream tokenization.
std::string Utf8Repair(std::string_view text);

/// Longest prefix of `text` of at most `max_bytes` bytes that does not end
/// mid-code-point (well-formed input is never split inside a sequence).
std::string_view Utf8ClampBytes(std::string_view text, size_t max_bytes);

/// Levenshtein edit distance between two strings.
size_t EditDistance(std::string_view a, std::string_view b);

/// Character n-grams of length `n` (with padding markers '^' and '$' when
/// `pad` is true); returns an empty vector for strings shorter than `n`
/// after padding.
std::vector<std::string> CharNgrams(std::string_view text, size_t n, bool pad);

}  // namespace doduo::util

#endif  // DODUO_UTIL_STRING_UTIL_H_
