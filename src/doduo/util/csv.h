#ifndef DODUO_UTIL_CSV_H_
#define DODUO_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "doduo/util/status.h"

namespace doduo::util {

/// A parsed CSV file: rows of string cells. Row 0 is the header when the
/// file has one; this type does not interpret headers itself.
using CsvRows = std::vector<std::vector<std::string>>;

/// Parses RFC-4180-style CSV text: comma separated, double-quote quoting,
/// doubled quotes inside quoted fields, LF / CRLF / bare-CR line endings
/// (CR and LF inside a quoted field are cell content, not row breaks). A
/// leading UTF-8 BOM is stripped so it never corrupts the first header
/// name. A trailing newline does not produce an empty final row.
[[nodiscard]] Result<CsvRows> ParseCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
[[nodiscard]] Result<CsvRows> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text, quoting cells that contain commas, quotes,
/// or newlines.
std::string WriteCsvString(const CsvRows& rows);

/// Writes rows to a CSV file on disk.
[[nodiscard]] Status WriteCsvFile(const std::string& path, const CsvRows& rows);

}  // namespace doduo::util

#endif  // DODUO_UTIL_CSV_H_
