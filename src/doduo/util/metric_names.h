#ifndef DODUO_UTIL_METRIC_NAMES_H_
#define DODUO_UTIL_METRIC_NAMES_H_

#include <string_view>

namespace doduo::util::metric_names {

// The central metric-name registry (DESIGN §10, §16). Every name passed to
// GetCounter/GetHistogram anywhere in src/ must appear here, and every name
// here must have a call site; `doduo_lint --all` (metrics-registry pass)
// enforces both directions and suggests the nearest registered name when a
// literal looks typo'd. Names with the "test." prefix are ad-hoc test
// metrics and exempt.
//
// Registering a name means adding one constant below and using it (or the
// identical literal) at the call site. Call sites may keep inline literals
// — the registry is the source of truth the linter checks them against,
// so a near-duplicate like "annotate.abstaned" can never ship silently.
//
// Naming: "<subsystem>.<event>[_total|_us]". The "annotate.*" family
// (per-column robustness outcomes) is intentionally distinct from
// "annotator.*" (batch pipeline throughput) — see DESIGN §15.

// -- core/annotator: batch pipeline throughput and latency ------------------
inline constexpr std::string_view kAnnotatorTablesTotal =
    "annotator.tables_total";
inline constexpr std::string_view kAnnotatorColumnsTotal =
    "annotator.columns_total";
inline constexpr std::string_view kAnnotatorErrorsTotal =
    "annotator.errors_total";
inline constexpr std::string_view kAnnotatorBatchesTotal =
    "annotator.batches_total";
inline constexpr std::string_view kAnnotatorAnnotateUs =
    "annotator.annotate_us";
inline constexpr std::string_view kAnnotatorBatchUs = "annotator.batch_us";

// -- core/annotator: per-column robustness outcomes (DESIGN §15) ------------
inline constexpr std::string_view kAnnotateAbstained = "annotate.abstained";
inline constexpr std::string_view kAnnotateSkippedCols =
    "annotate.skipped_cols";

// -- core/model: forward-pass stage latencies -------------------------------
inline constexpr std::string_view kModelEncoderForwardUs =
    "model.encoder_forward_us";
inline constexpr std::string_view kModelHeadsUs = "model.heads_us";

// -- checkpoint load path (nn/serialize, core/model_io) ---------------------
inline constexpr std::string_view kLoadBytesMapped = "load.bytes_mapped";
inline constexpr std::string_view kLoadBytesCopied = "load.bytes_copied";
inline constexpr std::string_view kLoadCheckpointUs = "load.checkpoint_us";

// -- table/sanitizer: dirty-input repair outcomes ---------------------------
inline constexpr std::string_view kSanitizerCellsRepaired =
    "sanitizer.cells_repaired";
inline constexpr std::string_view kSanitizerCellsClamped =
    "sanitizer.cells_clamped";
inline constexpr std::string_view kSanitizerColsSkipped =
    "sanitizer.cols_skipped";
inline constexpr std::string_view kSanitizerTables = "sanitizer.tables";

// -- table/serializer: tokenization volume ----------------------------------
inline constexpr std::string_view kSerializerSerializeUs =
    "serializer.serialize_us";
inline constexpr std::string_view kSerializerTablesTotal =
    "serializer.tables_total";
inline constexpr std::string_view kSerializerTokensTotal =
    "serializer.tokens_total";
inline constexpr std::string_view kSerializerSpansTruncatedTotal =
    "serializer.spans_truncated_total";

// -- serve: request lifecycle (DESIGN §12) ----------------------------------
inline constexpr std::string_view kServeE2eUs = "serve.e2e_us";
inline constexpr std::string_view kServeProtocolErrors =
    "serve.protocol_errors";
inline constexpr std::string_view kServeQueueWaitUs = "serve.queue_wait_us";
inline constexpr std::string_view kServeBatchAssemblyUs =
    "serve.batch_assembly_us";
inline constexpr std::string_view kServeInferenceUs = "serve.inference_us";
inline constexpr std::string_view kServeBatchSize = "serve.batch_size";
inline constexpr std::string_view kServeRequestsTotal =
    "serve.requests_total";
inline constexpr std::string_view kServeRobustRequestsTotal =
    "serve.robust_requests_total";
inline constexpr std::string_view kServeRequestsRejected =
    "serve.requests_rejected";
inline constexpr std::string_view kServeBatchesTotal = "serve.batches_total";
inline constexpr std::string_view kServeBatchFallbacks =
    "serve.batch_fallbacks";

}  // namespace doduo::util::metric_names

#endif  // DODUO_UTIL_METRIC_NAMES_H_
