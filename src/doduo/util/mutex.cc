#include "doduo/util/mutex.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "doduo/util/env.h"

namespace doduo::util {

namespace {

// ---------------------------------------------------------------------------
// Lock-order deadlock detector (DESIGN §13).
//
// Model: a directed graph over live-and-dead Mutex instances where an edge
// A -> B records "some thread held A while acquiring B". A consistent lock
// hierarchy keeps this graph acyclic forever; the first acquisition that
// would close a cycle is a lock-order inversion — two threads taking the
// same locks in opposite orders can deadlock under the right interleaving —
// and aborts immediately with the cycle, even though *this* run did not
// block. TSan only reports such deadlocks when the interleaving actually
// bites; this detector turns any single-threaded traversal of both orders
// into a deterministic failure.
//
// Cost model: when disabled (the default in release trees) every operation
// is one relaxed atomic load. When enabled, each acquisition pushes onto a
// thread-local held stack; the process-wide graph (std::mutex-protected —
// the detector cannot use util::Mutex for its own bookkeeping) is consulted
// only while at least one other lock is held, and a full edge insert with
// cycle check happens only the first time a given (held, acquired) pair is
// seen. Nodes are never garbage-collected: ids are unique per Mutex
// instance for the process lifetime, so a recycled address cannot alias an
// old node, and only mutexes that participate in nested acquisition ever
// reach the graph.
// ---------------------------------------------------------------------------

struct HeldLock {
  uint32_t id;
  const char* name;  // borrowed from the live Mutex; copied on edge record
};

thread_local std::vector<HeldLock> t_held;

struct EdgeContext {
  // Names of every lock the recording thread held when the edge was first
  // observed (the "previous" stack in inversion reports).
  std::vector<std::string> held_names;
};

struct LockGraph {
  std::mutex mu;
  std::map<uint32_t, std::vector<uint32_t>> adjacency;
  std::map<std::pair<uint32_t, uint32_t>, EdgeContext> edges;
  std::map<uint32_t, std::string> names;
};

LockGraph& GetLockGraph() {
  static LockGraph* graph = new LockGraph();  // never destroyed
  return *graph;
}

std::atomic<bool>& DeadlockFlag() {
#ifdef DODUO_DEADLOCK_CHECK
  constexpr int64_t kDefault = 1;
#else
  constexpr int64_t kDefault = 0;
#endif
  static std::atomic<bool> enabled{GetEnvInt("DODUO_DEADLOCK_CHECK",
                                             kDefault) != 0};
  return enabled;
}

/// DFS: does a path `from` => `to` exist? On success `path` holds the node
/// sequence from `from` to `to` inclusive.
bool FindPath(const LockGraph& graph, uint32_t from, uint32_t to,
              std::vector<uint32_t>* path) {
  path->push_back(from);
  if (from == to) return true;
  auto it = graph.adjacency.find(from);
  if (it != graph.adjacency.end()) {
    for (uint32_t next : it->second) {
      // The graph is acyclic by construction (cycles abort before insert),
      // so plain DFS terminates without a visited set.
      if (FindPath(graph, next, to, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

void AppendQuoted(std::ostringstream* out, const std::string& name) {
  *out << '"' << name << '"';
}

/// Builds the inversion report and aborts. `graph.mu` must be held by the
/// caller (we never return).
[[noreturn]] void DieOnCycle(const LockGraph& graph, const HeldLock& acquiring,
                             const HeldLock& held,
                             const std::vector<uint32_t>& path) {
  auto name_of = [&graph](uint32_t id) -> std::string {
    auto it = graph.names.find(id);
    return it != graph.names.end() ? it->second : "<unnamed>";
  };
  std::ostringstream out;
  // First line carries the whole cycle so a single-line matcher sees every
  // lock involved (tests/util/mutex_test.cc pins this).
  out << "doduo deadlock check: lock-order inversion (potential deadlock): "
         "cycle ";
  AppendQuoted(&out, acquiring.name);
  for (size_t i = 1; i < path.size(); ++i) {
    out << " -> ";
    AppendQuoted(&out, name_of(path[i]));
  }
  out << " -> ";
  AppendQuoted(&out, acquiring.name);
  out << "\n  this thread is acquiring ";
  AppendQuoted(&out, acquiring.name);
  out << " while holding [";
  for (size_t i = 0; i < t_held.size(); ++i) {
    if (i > 0) out << ", ";
    AppendQuoted(&out, t_held[i].name);
  }
  out << "]\n";
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto edge = graph.edges.find({path[i], path[i + 1]});
    out << "  previously ";
    AppendQuoted(&out, name_of(path[i + 1]));
    out << " was acquired while holding [";
    if (edge != graph.edges.end()) {
      const std::vector<std::string>& names = edge->second.held_names;
      for (size_t k = 0; k < names.size(); ++k) {
        if (k > 0) out << ", ";
        AppendQuoted(&out, names[k]);
      }
    }
    out << "]\n";
  }
  (void)held;
  std::fputs(out.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

/// Runs the order check for blocking acquisition of (id, name) BEFORE the
/// underlying mutex blocks, so an inversion is reported even on the run
/// where the deadlock would actually bite.
void CheckOrder(uint32_t id, const char* name) {
  if (t_held.empty()) return;
  const HeldLock acquiring{id, name};
  for (const HeldLock& held : t_held) {
    if (held.id == id) {
      std::fprintf(stderr,
                   "doduo deadlock check: recursive acquisition of mutex "
                   "\"%s\" (already held by this thread)\n",
                   name);
      std::fflush(stderr);
      std::abort();
    }
  }
  LockGraph& graph = GetLockGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  for (const HeldLock& held : t_held) {
    const std::pair<uint32_t, uint32_t> key{held.id, id};
    if (graph.edges.count(key) > 0) continue;  // already proven consistent
    std::vector<uint32_t> path;
    if (FindPath(graph, id, held.id, &path)) {
      DieOnCycle(graph, acquiring, held, path);
    }
    graph.adjacency[held.id].push_back(id);
    EdgeContext& context = graph.edges[key];
    context.held_names.reserve(t_held.size());
    for (const HeldLock& h : t_held) context.held_names.emplace_back(h.name);
    graph.names.emplace(held.id, held.name);
    graph.names.emplace(id, name);
  }
}

void PushHeld(uint32_t id, const char* name) {
  t_held.push_back({id, name});
}

void PopHeld(uint32_t id) {
  // Usually the top; search backwards so out-of-order unlocks (legal, if
  // rare) and locks taken before the detector was enabled both work.
  for (size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1].id == id) {
      t_held.erase(t_held.begin() + static_cast<int64_t>(i) - 1);
      return;
    }
  }
}

uint32_t NextMutexId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool DeadlockCheckEnabled() {
  return DeadlockFlag().load(std::memory_order_relaxed);
}

void SetDeadlockCheckEnabled(bool enabled) {
  DeadlockFlag().store(enabled, std::memory_order_relaxed);
}

Mutex::Mutex(const char* name) : name_(name), id_(NextMutexId()) {}

void Mutex::Lock() {
  if (DeadlockCheckEnabled()) {
    CheckOrder(id_, name_);
    mu_.lock();
    PushHeld(id_, name_);
    return;
  }
  mu_.lock();
}

void Mutex::Unlock() {
  if (DeadlockCheckEnabled()) PopHeld(id_);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  // A try-acquire cannot block, so it adds no ordering constraint — record
  // it as held (later blocking acquisitions order against it) but add no
  // graph edge for the acquisition itself.
  if (DeadlockCheckEnabled()) PushHeld(id_, name_);
  return true;
}

void CondVar::Wait(Mutex* mu) {
  // condition_variable_any waits through Mutex's BasicLockable interface,
  // so the held-stack bookkeeping tracks the release/reacquire exactly.
  cv_.wait(*mu);
}

bool CondVar::WaitFor(Mutex* mu, int64_t timeout_us) {
  return cv_.wait_for(*mu, std::chrono::microseconds(timeout_us)) ==
         std::cv_status::no_timeout;
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace doduo::util
