#ifndef DODUO_UTIL_STATUS_H_
#define DODUO_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "doduo/util/check.h"

namespace doduo::util {

/// Error categories for recoverable failures (mostly file/format IO).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
};

/// Returns a short human-readable name of `code` ("OK", "IoError", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, used instead of exceptions for
/// recoverable errors. Programmer errors use DODUO_CHECK instead.
///
/// [[nodiscard]] on the type makes every ignored Status-returning call a
/// compile-time warning (an error under -DDODUO_WERROR=ON); doduo_lint's
/// discarded-status rule backstops call sites the compiler cannot see.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats "<CodeName>: <message>" for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored result is a fatal programmer error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error status, mirroring absl::StatusOr.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    DODUO_CHECK(!std::get<Status>(state_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  const T& value() const& {
    DODUO_CHECK(ok()) << status().ToString();
    return std::get<T>(state_);
  }
  T& value() & {
    DODUO_CHECK(ok()) << status().ToString();
    return std::get<T>(state_);
  }
  T&& value() && {
    DODUO_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(state_));
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace doduo::util

#endif  // DODUO_UTIL_STATUS_H_
