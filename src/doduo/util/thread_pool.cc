#include "doduo/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "doduo/util/check.h"
#include "doduo/util/env.h"

namespace doduo::util {

namespace {

// Set for the lifetime of every worker thread; ParallelFor consults it so a
// nested call from inside a task runs inline instead of blocking on the
// queue it is supposed to drain.
thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::Submit(std::function<void()> fn) {
  DODUO_CHECK(fn != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // No shutdown check: tasks may legally submit follow-up work while the
    // destructor drains, and the submitting worker's own loop (still alive
    // by definition) picks it up before exiting.
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      // Drain everything that was submitted before shutdown; exit only once
      // the queue is empty, so no accepted task is ever dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t range = end - begin;
  const int64_t min_chunk = std::max<int64_t>(1, grain);
  if (num_threads() <= 1 || range <= min_chunk || InWorker()) {
    fn(begin, end);
    return;
  }

  const int64_t num_chunks = std::min<int64_t>(
      num_threads(), (range + min_chunk - 1) / min_chunk);
  // Near-equal contiguous chunks: the first `remainder` chunks get one extra
  // iteration. Chunk boundaries depend only on (range, num_chunks), never on
  // scheduling, and fn's internal iteration order is untouched.
  const int64_t base = range / num_chunks;
  const int64_t remainder = range % num_chunks;

  struct Sync {
    std::mutex mutex;
    std::condition_variable all_done;
    int64_t pending;
    std::exception_ptr first_error;
  } sync;
  sync.pending = num_chunks - 1;

  auto run_chunk = [&fn, &sync](int64_t chunk_begin, int64_t chunk_end) {
    try {
      fn(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sync.mutex);
      if (!sync.first_error) sync.first_error = std::current_exception();
    }
  };

  int64_t cursor = begin;
  int64_t caller_begin = 0;
  int64_t caller_end = 0;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t chunk = base + (c < remainder ? 1 : 0);
    const int64_t chunk_begin = cursor;
    const int64_t chunk_end = cursor + chunk;
    cursor = chunk_end;
    if (c == 0) {
      // The caller works too instead of idling while it waits.
      caller_begin = chunk_begin;
      caller_end = chunk_end;
      continue;
    }
    Submit([&sync, &run_chunk, chunk_begin, chunk_end] {
      run_chunk(chunk_begin, chunk_end);
      std::lock_guard<std::mutex> lock(sync.mutex);
      if (--sync.pending == 0) sync.all_done.notify_one();
    });
  }
  DODUO_CHECK_EQ(cursor, end);
  run_chunk(caller_begin, caller_end);

  std::unique_lock<std::mutex> lock(sync.mutex);
  sync.all_done.wait(lock, [&sync] { return sync.pending == 0; });
  if (sync.first_error) std::rethrow_exception(sync.first_error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

int DefaultComputeThreads() {
  int64_t n = GetEnvInt("DODUO_NUM_THREADS", 0);
  if (n <= 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    n = hardware == 0 ? 1 : static_cast<int64_t>(hardware);
  }
  return static_cast<int>(std::clamp<int64_t>(n, 1, 16));
}

}  // namespace

ThreadPool* ComputePool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(DefaultComputeThreads());
  }
  return g_pool.get();
}

int ComputeThreads() { return ComputePool()->num_threads(); }

void SetComputeThreads(int num_threads) {
  std::unique_ptr<ThreadPool> replacement =
      std::make_unique<ThreadPool>(std::max(1, num_threads));
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::move(replacement);
}

}  // namespace doduo::util
