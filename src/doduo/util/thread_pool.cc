#include "doduo/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "doduo/util/check.h"
#include "doduo/util/env.h"

namespace doduo::util {

namespace {

// Set for the lifetime of every worker thread; ParallelFor consults it so a
// nested call from inside a task runs inline instead of blocking on the
// queue it is supposed to drain.
thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::Submit(std::function<void()> fn) {
  DODUO_CHECK(fn != nullptr);
  {
    MutexLock lock(&mutex_);
    // No shutdown check: tasks may legally submit follow-up work while the
    // destructor drains, and the submitting worker's own loop (still alive
    // by definition) picks it up before exiting.
    queue_.push_back(std::move(fn));
  }
  work_available_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(&mutex_);
      // Drain everything that was submitted before shutdown; exit only once
      // the queue is empty, so no accepted task is ever dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t range = end - begin;
  const int64_t min_chunk = std::max<int64_t>(1, grain);
  if (num_threads() <= 1 || range <= min_chunk || InWorker()) {
    fn(begin, end);
    return;
  }

  const int64_t num_chunks = std::min<int64_t>(
      num_threads(), (range + min_chunk - 1) / min_chunk);
  // Near-equal contiguous chunks: the first `remainder` chunks get one extra
  // iteration. Chunk boundaries depend only on (range, num_chunks), never on
  // scheduling, and fn's internal iteration order is untouched.
  const int64_t base = range / num_chunks;
  const int64_t remainder = range % num_chunks;

  struct Sync {
    Mutex mutex{"thread_pool.parallel_for"};
    CondVar all_done;
    int64_t pending DODUO_GUARDED_BY(mutex);
    std::exception_ptr first_error DODUO_GUARDED_BY(mutex);
  } sync;
  {
    MutexLock lock(&sync.mutex);
    sync.pending = num_chunks - 1;
  }

  auto run_chunk = [&fn, &sync](int64_t chunk_begin, int64_t chunk_end) {
    try {
      fn(chunk_begin, chunk_end);
    } catch (...) {
      MutexLock lock(&sync.mutex);
      if (!sync.first_error) sync.first_error = std::current_exception();
    }
  };

  int64_t cursor = begin;
  int64_t caller_begin = 0;
  int64_t caller_end = 0;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t chunk = base + (c < remainder ? 1 : 0);
    const int64_t chunk_begin = cursor;
    const int64_t chunk_end = cursor + chunk;
    cursor = chunk_end;
    if (c == 0) {
      // The caller works too instead of idling while it waits.
      caller_begin = chunk_begin;
      caller_end = chunk_end;
      continue;
    }
    Submit([&sync, &run_chunk, chunk_begin, chunk_end] {
      run_chunk(chunk_begin, chunk_end);
      // Notify while holding the lock: the waiter cannot return (and
      // destroy sync) until this thread releases it, so the condvar is
      // alive for the whole NotifyOne call.
      MutexLock lock(&sync.mutex);
      if (--sync.pending == 0) sync.all_done.NotifyOne();
    });
  }
  DODUO_CHECK_EQ(cursor, end);
  run_chunk(caller_begin, caller_end);

  MutexLock lock(&sync.mutex);
  while (sync.pending != 0) sync.all_done.Wait(&sync.mutex);
  if (sync.first_error) std::rethrow_exception(sync.first_error);
}

namespace {

// Function-local and leaked so the annotated mutex (whose constructor is
// not constexpr) cannot be touched before it is initialized, whatever the
// cross-TU static-init order.
struct GlobalPool {
  Mutex mutex{"thread_pool.global"};
  std::unique_ptr<ThreadPool> pool DODUO_GUARDED_BY(mutex);
};

GlobalPool& GetGlobalPool() {
  static GlobalPool* global = new GlobalPool();  // never destroyed
  return *global;
}

int DefaultComputeThreads() {
  int64_t n = GetEnvInt("DODUO_NUM_THREADS", 0);
  if (n <= 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    n = hardware == 0 ? 1 : static_cast<int64_t>(hardware);
  }
  return static_cast<int>(std::clamp<int64_t>(n, 1, 16));
}

}  // namespace

ThreadPool* ComputePool() {
  GlobalPool& global = GetGlobalPool();
  MutexLock lock(&global.mutex);
  if (global.pool == nullptr) {
    global.pool = std::make_unique<ThreadPool>(DefaultComputeThreads());
  }
  return global.pool.get();
}

int ComputeThreads() { return ComputePool()->num_threads(); }

void SetComputeThreads(int num_threads) {
  std::unique_ptr<ThreadPool> replacement =
      std::make_unique<ThreadPool>(std::max(1, num_threads));
  GlobalPool& global = GetGlobalPool();
  {
    MutexLock lock(&global.mutex);
    global.pool.swap(replacement);
  }
  // `replacement` now owns the outgoing pool; letting it die here joins
  // its workers (~ThreadPool takes thread_pool.queue) with
  // thread_pool.global already released, keeping the lock hierarchy flat
  // (DESIGN §13: no lock is held while acquiring another).
}

}  // namespace doduo::util
