#ifndef DODUO_UTIL_LOGGING_H_
#define DODUO_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace doduo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted; messages below it are dropped.
/// The initial level is kInfo, or the value of the DODUO_LOG_LEVEL
/// environment variable ("debug", "info", "warning", "error") if set.
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal_logging {

// One log statement; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace doduo::util

#define DODUO_LOG(level)                                   \
  ::doduo::util::internal_logging::LogMessage(             \
      ::doduo::util::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DODUO_UTIL_LOGGING_H_
