#ifndef DODUO_UTIL_MMAP_FILE_H_
#define DODUO_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "doduo/util/status.h"

namespace doduo::util {

/// Read-only view of a whole file, mmap-ed when the platform allows it.
///
/// The mapping is `mmap(MAP_SHARED | PROT_READ)` (DESIGN §14): pages are
/// backed by the kernel page cache, so N processes (or N ReplicaPool
/// replicas in one process) mapping the same checkpoint share one physical
/// copy of the bytes, and "loading" costs page faults instead of a
/// parse-and-copy. Set DODUO_MMAP=0 to force the portable fallback, which
/// reads the file into a private heap buffer — same interface, no sharing.
///
/// MmapFile is handed around as shared_ptr and used as the type-erased
/// keepalive of tensors borrowed from the mapping, so the map outlives
/// every view into it by construction.
class MmapFile {
 public:
  /// Maps (or reads) `path`. Fails with a clean Status on a missing or
  /// unreadable file; an empty file is valid and yields size() == 0.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes come from a live mmap (shared page cache), false
  /// when the fallback copied them to the heap.
  bool mapped() const { return mapped_; }

 private:
  MmapFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;  // owns the bytes when !mapped_
};

}  // namespace doduo::util

#endif  // DODUO_UTIL_MMAP_FILE_H_
