#ifndef DODUO_UTIL_ENV_H_
#define DODUO_UTIL_ENV_H_

#include <string>

namespace doduo::util {

/// Reads an environment variable, falling back to `fallback` when unset or
/// unparsable. Used by the experiment binaries for knobs such as
/// DODUO_SCALE and DODUO_SEED, and by the threading stack for
/// DODUO_NUM_THREADS (compute-pool size, see util/thread_pool.h) and
/// DODUO_PARALLEL_THRESHOLD (kernel parallel-dispatch gate, see nn/ops.cc).
std::string GetEnvString(const char* name, const std::string& fallback);
double GetEnvDouble(const char* name, double fallback);
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Global experiment scale factor from DODUO_SCALE (default 1.0). Dataset
/// sizes and epoch counts in bench/ multiply by this.
double ExperimentScale();

/// Global experiment seed from DODUO_SEED (default 42).
uint64_t ExperimentSeed();

}  // namespace doduo::util

#endif  // DODUO_UTIL_ENV_H_
