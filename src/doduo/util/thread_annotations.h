#ifndef DODUO_UTIL_THREAD_ANNOTATIONS_H_
#define DODUO_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (DESIGN §13).
//
// These annotations bind shared state to the lock that guards it, so the
// locking protocol of the concurrent subsystems (util::ThreadPool, the
// metrics registry, serve::DynamicBatcher, serve::Server,
// core::ReplicaPool) is checked at compile time by Clang's
// -Wthread-safety analysis instead of by code review. Build with
//   cmake -B build-ts -S . -DCMAKE_CXX_COMPILER=clang++ -DDODUO_THREAD_SAFETY=ON
// to turn analysis findings into errors (tools/check.sh runs this as its
// own stage when a clang++ is available). Under GCC — which has no such
// analysis — every macro expands to nothing, so the annotations are pure
// documentation there and the tree builds identically.
//
// Vocabulary (mirrors the Clang documentation and Abseil's macros):
//   DODUO_GUARDED_BY(mu)     field may only be read/written while mu is held
//   DODUO_PT_GUARDED_BY(mu)  pointee of a pointer field is guarded by mu
//   DODUO_REQUIRES(mu)       caller must hold mu across the call
//   DODUO_ACQUIRE(mu)        function acquires mu and does not release it
//   DODUO_RELEASE(mu)        function releases mu held on entry
//   DODUO_TRY_ACQUIRE(b, mu) acquires mu iff the function returns b
//   DODUO_EXCLUDES(mu)       caller must NOT hold mu (deadlock guard)
//   DODUO_CAPABILITY(name)   class is a lockable capability (util::Mutex)
//   DODUO_SCOPED_CAPABILITY  RAII class that acquires in its constructor
//   DODUO_NO_THREAD_SAFETY_ANALYSIS
//                            opt one function body out of the analysis.
//                            Escape policy (DESIGN §13): only on functions
//                            that *implement* a synchronization primitive,
//                            never to silence a finding in ordinary code,
//                            and always with a one-line justification
//                            comment at the use site.

#if defined(__clang__)
#define DODUO_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define DODUO_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

#define DODUO_CAPABILITY(x) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define DODUO_SCOPED_CAPABILITY \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define DODUO_GUARDED_BY(x) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define DODUO_PT_GUARDED_BY(x) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define DODUO_ACQUIRED_BEFORE(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define DODUO_ACQUIRED_AFTER(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define DODUO_REQUIRES(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define DODUO_ACQUIRE(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define DODUO_RELEASE(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define DODUO_TRY_ACQUIRE(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define DODUO_EXCLUDES(...) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define DODUO_ASSERT_CAPABILITY(x) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define DODUO_RETURN_CAPABILITY(x) \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define DODUO_NO_THREAD_SAFETY_ANALYSIS \
  DODUO_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // DODUO_UTIL_THREAD_ANNOTATIONS_H_
