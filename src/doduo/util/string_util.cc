#include "doduo/util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace doduo::util {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAsciiDigits(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool LooksNumeric(std::string_view text) {
  std::string t = Trim(text);
  if (t.empty()) return false;
  size_t i = 0;
  if (t[0] == '+' || t[0] == '-') i = 1;
  bool saw_digit = false;
  bool saw_point = false;
  for (; i < t.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(t[i]);
    if (std::isdigit(c)) {
      saw_digit = true;
    } else if (c == '.' && !saw_point) {
      saw_point = true;
    } else if (c == ',') {
      // Thousands separator; accepted anywhere between digits.
      if (!saw_digit) return false;
    } else {
      return false;
    }
  }
  return saw_digit;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(100.0 * fraction, digits);
}

size_t Utf8Length(std::string_view text) {
  size_t count = 0;
  for (char c : text) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++count;
  }
  return count;
}

namespace {

/// Length of the well-formed UTF-8 sequence starting at `text[pos]`, or 0
/// when the bytes there are ill-formed (truncated, overlong, a surrogate,
/// or above U+10FFFF). Follows the Unicode 15 table of valid byte ranges.
size_t Utf8SequenceLength(std::string_view text, size_t pos) {
  const auto byte = [&](size_t i) {
    return static_cast<unsigned char>(text[i]);
  };
  const unsigned char lead = byte(pos);
  if (lead < 0x80) return 1;
  if (lead < 0xC2) return 0;  // continuation byte or overlong C0/C1 lead
  size_t need = 0;
  unsigned char lo = 0x80;
  unsigned char hi = 0xBF;
  if (lead < 0xE0) {
    need = 2;
  } else if (lead < 0xF0) {
    need = 3;
    if (lead == 0xE0) lo = 0xA0;        // reject overlong 3-byte forms
    if (lead == 0xED) hi = 0x9F;        // reject UTF-16 surrogates
  } else if (lead < 0xF5) {
    need = 4;
    if (lead == 0xF0) lo = 0x90;        // reject overlong 4-byte forms
    if (lead == 0xF4) hi = 0x8F;        // reject > U+10FFFF
  } else {
    return 0;  // F5..FF never appear in well-formed UTF-8
  }
  if (pos + need > text.size()) return 0;  // truncated at end of text
  if (byte(pos + 1) < lo || byte(pos + 1) > hi) return 0;
  for (size_t i = 2; i < need; ++i) {
    if ((byte(pos + i) & 0xC0) != 0x80) return 0;
  }
  return need;
}

}  // namespace

bool Utf8IsValid(std::string_view text) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t len = Utf8SequenceLength(text, pos);
    if (len == 0) return false;
    pos += len;
  }
  return true;
}

std::string Utf8Repair(std::string_view text) {
  static constexpr char kReplacement[] = "\xEF\xBF\xBD";  // U+FFFD
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t len = Utf8SequenceLength(text, pos);
    if (len > 0) {
      out.append(text.substr(pos, len));
      pos += len;
      continue;
    }
    // One replacement per maximal invalid subsequence: skip the bad lead
    // byte plus any continuation bytes dangling behind it.
    out.append(kReplacement);
    ++pos;
    while (pos < text.size() &&
           (static_cast<unsigned char>(text[pos]) & 0xC0) == 0x80) {
      ++pos;
    }
  }
  return out;
}

std::string_view Utf8ClampBytes(std::string_view text, size_t max_bytes) {
  if (text.size() <= max_bytes) return text;
  size_t end = max_bytes;
  // Back off over continuation bytes so a multi-byte sequence is dropped
  // whole rather than split (at most 3 steps).
  while (end > 0 &&
         (static_cast<unsigned char>(text[end]) & 0xC0) == 0x80) {
    --end;
  }
  return text.substr(0, end);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t substitution = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::vector<std::string> CharNgrams(std::string_view text, size_t n,
                                    bool pad) {
  std::string padded;
  if (pad) {
    padded.reserve(text.size() + 2);
    padded.push_back('^');
    padded.append(text);
    padded.push_back('$');
  } else {
    padded.assign(text);
  }
  std::vector<std::string> grams;
  if (padded.size() < n) return grams;
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, n));
  }
  return grams;
}

}  // namespace doduo::util
