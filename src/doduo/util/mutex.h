#ifndef DODUO_UTIL_MUTEX_H_
#define DODUO_UTIL_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "doduo/util/thread_annotations.h"

namespace doduo::util {

/// The project mutex (DESIGN §13). A thin wrapper over std::mutex that adds
/// the two things raw std::mutex cannot give us:
///
///   1. Clang thread-safety annotations: Mutex is a DODUO_CAPABILITY, so
///      fields declared DODUO_GUARDED_BY(mu_) are statically checked to be
///      touched only while mu_ is held (-Wthread-safety, DODUO_THREAD_SAFETY
///      build).
///   2. A runtime lock-order deadlock detector: every Mutex carries a name,
///      and when the detector is enabled (DODUO_DEADLOCK_CHECK build option
///      or DODUO_DEADLOCK_CHECK=1 in the environment) each thread tracks the
///      stack of locks it holds while a process-wide acquisition graph
///      records every "held A while acquiring B" edge. The first acquisition
///      that would close a cycle — a lock-order inversion that could
///      deadlock under the right interleaving, whether or not it did this
///      run — aborts with the full cycle and both acquisition contexts.
///
/// Outside src/doduo/util/, std::mutex / std::lock_guard /
/// std::condition_variable are banned by the `raw-mutex` lint rule; use
/// Mutex + MutexLock + CondVar so every lock in the tree participates in
/// both analyses.
class DODUO_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (a string literal in practice). Names
  /// identify locks in deadlock reports and in DESIGN §13's lock table;
  /// instances of the same class share one name.
  explicit Mutex(const char* name);

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DODUO_ACQUIRE();
  void Unlock() DODUO_RELEASE();
  /// Never blocks, so it never deadlocks: try-acquisitions are recorded as
  /// held but add no ordering edges to the acquisition graph.
  [[nodiscard]] bool TryLock() DODUO_TRY_ACQUIRE(true);

  // BasicLockable spelling, so Mutex works with std facilities (CondVar's
  // std::condition_variable_any waits via these).
  void lock() DODUO_ACQUIRE() { Lock(); }
  void unlock() DODUO_RELEASE() { Unlock(); }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
  const uint32_t id_;  // acquisition-graph node, unique per instance
};

/// RAII lock for a util::Mutex — the only way code outside util/ should
/// hold one (DESIGN §13).
class DODUO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DODUO_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DODUO_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with util::Mutex. Waits release and reacquire
/// the mutex through its instrumented lock operations, so a thread that
/// waits and wakes keeps its deadlock-detector bookkeeping exact.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken — always wait in a
  /// predicate loop). `mu` must be held.
  void Wait(Mutex* mu) DODUO_REQUIRES(mu);

  /// Waits at most `timeout_us`. Returns false on timeout, true when
  /// notified. `mu` must be held.
  bool WaitFor(Mutex* mu, int64_t timeout_us) DODUO_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable_any cv_;
};

/// True when the lock-order detector is recording. Initialized from the
/// DODUO_DEADLOCK_CHECK environment variable; its default is on when the
/// tree was built with -DDODUO_DEADLOCK_CHECK=ON and off otherwise.
bool DeadlockCheckEnabled();

/// Flips the detector at runtime (tests). Locks acquired while the detector
/// was off are invisible to it, so enable before taking the locks under
/// test.
void SetDeadlockCheckEnabled(bool enabled);

}  // namespace doduo::util

#endif  // DODUO_UTIL_MUTEX_H_
