#include "doduo/experiments/env.h"

#include <filesystem>

#include "doduo/nn/serialize.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/util/env.h"
#include "doduo/util/logging.h"
#include "doduo/util/stopwatch.h"

namespace doduo::experiments {

namespace {

uint64_t HashCombine(uint64_t hash, uint64_t value) {
  return hash ^ (value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2));
}

std::string CacheDir() {
  return util::GetEnvString("DODUO_CACHE_DIR", "doduo_cache");
}

}  // namespace

int Scaled(int count) {
  const double scaled = util::ExperimentScale() * count;
  return std::max(1, static_cast<int>(scaled));
}

Env::Env(EnvOptions options)
    : options_(options),
      kb_(options.mode == BenchmarkMode::kWikiTable
              ? synth::KnowledgeBase::BuildWikiTableKb(options.seed)
              : synth::KnowledgeBase::BuildVizNetKb(options.seed)) {
  const bool wikitable = options_.mode == BenchmarkMode::kWikiTable;
  if (options_.pretrain_epochs == 0) {
    options_.pretrain_epochs = wikitable ? 5 : 10;
  }
  if (options_.corpus_list_mentions == 0) {
    options_.corpus_list_mentions = wikitable ? 40 : 120;
  }
  util::Rng rng(options_.seed + 1);

  synth::TableGeneratorOptions generator_options;
  generator_options.num_tables = options_.num_tables;
  generator_options.min_rows = options_.min_rows;
  generator_options.max_rows = options_.max_rows;
  generator_options.single_column_fraction =
      options_.single_column_fraction;
  if (options_.mode == BenchmarkMode::kWikiTable) {
    generator_options.dataset_name = "wikitable";
    generator_options.multi_label = true;
    generator_options.with_relations = true;
  } else {
    generator_options.dataset_name = "viznet";
    generator_options.multi_label = false;
    generator_options.with_relations = false;
    generator_options.distractor_prob = options_.distractor_prob;
  }
  synth::TableGenerator generator(&kb_, generator_options);
  dataset_ = generator.Generate(&rng);
  splits_ = table::SplitDataset(dataset_.tables.size(), 0.60, 0.10, &rng);

  // WordPiece vocabulary from the pre-training corpus (which covers every
  // entity pool, hence every cell value).
  synth::CorpusGenerator corpus_generator(&kb_);
  synth::CorpusOptions corpus_options;
  corpus_options.fact_mentions = options_.corpus_fact_mentions;
  corpus_options.type_mentions = options_.corpus_type_mentions;
  corpus_options.list_mentions = options_.corpus_list_mentions;
  corpus_options.seed = options_.seed + 2;
  const std::vector<std::string> corpus =
      corpus_generator.Generate(corpus_options);
  text::WordPieceTrainer wordpiece_trainer(
      {.vocab_size = options_.vocab_size, .min_pair_frequency = 2});
  vocab_ = wordpiece_trainer.TrainFromLines(corpus);
  tokenizer_ = std::make_unique<text::WordPieceTokenizer>(&vocab_);
}

transformer::TransformerConfig Env::EncoderConfig() const {
  transformer::TransformerConfig config;
  config.vocab_size = vocab_.size();
  config.max_positions = options_.max_positions;
  config.hidden_dim = options_.hidden_dim;
  config.num_layers = options_.num_layers;
  config.num_heads = options_.num_heads;
  config.ffn_dim = options_.ffn_dim;
  config.dropout = options_.dropout;
  return config;
}

core::DoduoConfig Env::MakeDoduoConfig() const {
  core::DoduoConfig config;
  config.encoder = EncoderConfig();
  // WikiTable's best-validated budget is the paper's 32 tokens/col; on
  // the numeric-heavy VizNet mode the miniature encoder validates best at
  // 8 (see EXPERIMENTS.md, Table 11 discussion).
  config.serializer.max_tokens_per_column =
      options_.mode == BenchmarkMode::kWikiTable ? 32 : 8;
  config.serializer.max_total_tokens = options_.max_positions;
  config.num_types = dataset_.type_vocab.size();
  config.num_relations = dataset_.relation_vocab.size();
  config.multi_label = dataset_.multi_label;
  if (options_.mode == BenchmarkMode::kVizNet) {
    config.tasks = core::TaskSet::kTypesOnly;
    config.num_relations = 0;
  }
  // Fine-tuning defaults; overridable for experimentation without a
  // rebuild (DODUO_FT_EPOCHS / DODUO_FT_LR / DODUO_FT_BATCH).
  config.epochs = static_cast<int>(util::GetEnvInt("DODUO_FT_EPOCHS", 20));
  config.batch_size =
      static_cast<int>(util::GetEnvInt("DODUO_FT_BATCH", 8));
  config.learning_rate = util::GetEnvDouble("DODUO_FT_LR", 2e-3);
  config.seed = options_.seed + 3;
  return config;
}

std::string Env::CacheKey() const {
  uint64_t hash = 1469598103934665603ULL;
  hash = HashCombine(hash, static_cast<uint64_t>(options_.mode));
  hash = HashCombine(hash, options_.seed);
  hash = HashCombine(hash, static_cast<uint64_t>(vocab_.size()));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.hidden_dim));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.num_layers));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.num_heads));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.ffn_dim));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.max_positions));
  hash = HashCombine(hash, static_cast<uint64_t>(options_.pretrain_epochs));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options_.pretrain_batch_size));
  hash = HashCombine(
      hash, static_cast<uint64_t>(options_.pretrain_learning_rate * 1e9));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options_.corpus_fact_mentions));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options_.corpus_type_mentions));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options_.corpus_list_mentions));
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(options_.mode == BenchmarkMode::kWikiTable
                         ? "lm_wikitable_"
                         : "lm_viznet_") +
         buffer + ".ckpt";
}

void Env::EnsurePretrained() {
  if (pretrainer_ != nullptr) return;

  util::Rng rng(options_.seed + 4);
  // The encoder name must match DoduoModel's so checkpoints interchange.
  pretrained_encoder_ = std::make_unique<transformer::BertModel>(
      "doduo.encoder", EncoderConfig(), &rng);
  mlm_head_ = std::make_unique<transformer::MlmHead>(
      "doduo.mlm", EncoderConfig(), &rng);
  transformer::MlmPretrainer::Options pretrain_options;
  pretrain_options.epochs = options_.pretrain_epochs;
  pretrain_options.batch_size = options_.pretrain_batch_size;
  pretrain_options.learning_rate = options_.pretrain_learning_rate;
  pretrain_options.seed = options_.seed + 5;
  pretrainer_ = std::make_unique<transformer::MlmPretrainer>(
      pretrained_encoder_.get(), mlm_head_.get(), pretrain_options);

  nn::ParameterList params = pretrained_encoder_->Parameters();
  nn::AppendParameters(mlm_head_->Parameters(), &params);

  const std::string cache_path =
      (std::filesystem::path(CacheDir()) / CacheKey()).string();
  if (options_.use_cache && std::filesystem::exists(cache_path)) {
    const util::Status status = nn::LoadParameters(cache_path, params);
    if (status.ok()) {
      DODUO_LOG(Info) << "loaded pre-trained LM from " << cache_path;
      pretrained_encoder_->set_training(false);
      return;
    }
    DODUO_LOG(Warning) << "ignoring stale LM cache: " << status.ToString();
  }

  // Tokenize the corpus and run MLM pre-training.
  synth::CorpusGenerator corpus_generator(&kb_);
  synth::CorpusOptions corpus_options;
  corpus_options.fact_mentions = options_.corpus_fact_mentions;
  corpus_options.type_mentions = options_.corpus_type_mentions;
  corpus_options.list_mentions = options_.corpus_list_mentions;
  corpus_options.seed = options_.seed + 2;
  const std::vector<std::string> corpus =
      corpus_generator.Generate(corpus_options);
  // The corpus is trained both as single sentences (sharp fact binding)
  // and packed into full-length sequences (BERT's packing recipe):
  // position embeddings and long-range attention must be trained across
  // the whole input window, or fine-tuning on ~100-token serialized tables
  // starts from untrained positions.
  std::vector<std::vector<int>> tokenized;
  std::vector<int> packed = {text::Vocab::kClsId};
  for (const std::string& sentence : corpus) {
    const std::vector<int> ids = tokenizer_->Encode(sentence);
    std::vector<int> single = {text::Vocab::kClsId};
    single.insert(single.end(), ids.begin(), ids.end());
    single.push_back(text::Vocab::kSepId);
    if (static_cast<int>(single.size()) <= options_.max_positions) {
      tokenized.push_back(std::move(single));
    }
    if (static_cast<int>(packed.size() + ids.size() + 1) >
        options_.max_positions) {
      if (packed.size() > 1) tokenized.push_back(std::move(packed));
      packed = {text::Vocab::kClsId};
    }
    packed.insert(packed.end(), ids.begin(), ids.end());
    packed.push_back(text::Vocab::kSepId);
  }
  if (packed.size() > 1) tokenized.push_back(std::move(packed));

  util::Stopwatch stopwatch;
  const double final_loss = pretrainer_->Train(tokenized);
  DODUO_LOG(Info) << "MLM pre-training: " << tokenized.size()
                  << " sentences, final loss " << final_loss << " in "
                  << stopwatch.ElapsedSeconds() << "s";

  if (options_.use_cache) {
    std::filesystem::create_directories(CacheDir());
    const util::Status status = nn::SaveParameters(cache_path, params);
    if (!status.ok()) {
      DODUO_LOG(Warning) << "failed to cache LM: " << status.ToString();
    }
  }
}

void Env::InitializeFromPretrained(core::DoduoModel* model) {
  DODUO_CHECK(model != nullptr);
  EnsurePretrained();
  nn::ParameterList source = pretrained_encoder_->Parameters();
  nn::ParameterList target = model->encoder()->Parameters();
  DODUO_CHECK_EQ(source.size(), target.size());
  for (size_t i = 0; i < source.size(); ++i) {
    DODUO_CHECK_EQ(source[i]->name, target[i]->name);
    DODUO_CHECK(nn::SameShape(source[i]->value, target[i]->value));
    target[i]->value = source[i]->value;
  }
}

transformer::MlmPretrainer* Env::PretrainedLm() {
  EnsurePretrained();
  return pretrainer_.get();
}

}  // namespace doduo::experiments
