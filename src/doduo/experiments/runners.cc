#include "doduo/experiments/runners.h"

#include "doduo/baselines/turl.h"
#include "doduo/core/calibration.h"
#include "doduo/util/env.h"
#include "doduo/util/logging.h"
#include "doduo/util/stopwatch.h"

namespace doduo::experiments {

DoduoRun RunDoduoOn(Env* env,
                    const table::ColumnAnnotationDataset& dataset,
                    const table::DatasetSplits& splits,
                    const DoduoVariant& variant) {
  DODUO_CHECK(env != nullptr);
  core::DoduoConfig config = env->MakeDoduoConfig();
  config.input_mode = variant.input_mode;
  if (variant.tasks >= 0) {
    config.tasks = static_cast<core::TaskSet>(variant.tasks);
  }
  config.serializer.max_tokens_per_column = variant.max_tokens_per_column;
  config.serializer.include_metadata = variant.include_metadata;
  if (variant.epochs > 0) config.epochs = variant.epochs;
  config.seed += variant.seed_offset;
  if (config.tasks == core::TaskSet::kTypesOnly) config.num_relations = 0;
  if (util::GetEnvInt("DODUO_FORCE_BCE", 0) != 0) config.multi_label = true;
  config.encoder.dropout = static_cast<float>(util::GetEnvDouble(
      "DODUO_FT_DROPOUT", config.encoder.dropout));

  table::DatasetSplits effective_splits = splits;
  if (variant.train_fraction < 1.0) {
    effective_splits.train =
        table::SubsampleIndices(splits.train, variant.train_fraction);
  }

  DoduoRun run;
  util::Rng rng(config.seed);
  run.model = std::make_unique<core::DoduoModel>(config, &rng);
  if (variant.from_pretrained) {
    env->InitializeFromPretrained(run.model.get());
  }
  if (variant.turl_visibility_mask) {
    run.model->set_mask_builder(
        baselines::MakeTurlVisibilityMaskBuilder());
  }
  run.serializer = std::make_unique<table::TableSerializer>(
      &env->tokenizer(), config.serializer);
  run.trainer = std::make_unique<core::Trainer>(run.model.get(),
                                                run.serializer.get());

  util::Stopwatch stopwatch;
  run.history = run.trainer->Train(dataset, effective_splits);
  run.has_relations = config.tasks != core::TaskSet::kTypesOnly &&
                      dataset.num_relations() > 0;
  // Each task is reported at its own best-validation checkpoint.
  if (run.has_relations) {
    run.trainer->RestoreBestRelationCheckpoint();
    run.relations = run.trainer->EvaluateRelations(dataset, splits.test);
  }
  run.trainer->RestoreBestTypeCheckpoint();
  run.types = run.trainer->EvaluateTypes(dataset, splits.test);
  // Fit the confidence temperature on the validation split at the type
  // checkpoint that ships, so saved models carry calibrated confidences.
  const double temperature = core::FitTemperature(
      core::CollectTypeCalibration(run.model.get(), run.serializer.get(),
                                   dataset, splits.valid),
      config.multi_label);
  run.model->set_calibration_temperature(temperature);
  DODUO_LOG(Info) << "fine-tuned variant in " << stopwatch.ElapsedSeconds()
                  << "s: type F1 " << run.types.micro.f1
                  << (run.has_relations
                          ? " rel F1 " + std::to_string(run.relations.micro.f1)
                          : "");
  return run;
}

DoduoRun RunDoduo(Env* env, const DoduoVariant& variant) {
  return RunDoduoOn(env, env->dataset(), env->splits(), variant);
}

core::EvalResult RunSherlock(Env* env) {
  DODUO_CHECK(env != nullptr);
  baselines::SherlockOptions options;
  options.multi_label = env->dataset().multi_label;
  options.seed = env->options().seed + 11;
  baselines::SherlockModel sherlock(env->dataset().type_vocab.size(),
                                    options);
  sherlock.Train(env->dataset(), env->splits());
  return sherlock.EvaluateTypes(env->dataset(), env->splits().test);
}

core::EvalResult RunSato(Env* env) {
  DODUO_CHECK(env != nullptr);
  DODUO_CHECK(!env->dataset().multi_label)
      << "Sato runs on single-label datasets (VizNet), as in the paper";
  baselines::SatoModel::Options options;
  options.sherlock.multi_label = false;
  options.sherlock.seed = env->options().seed + 12;
  options.lda.seed = env->options().seed + 13;
  options.crf.seed = env->options().seed + 14;
  baselines::SatoModel sato(env->dataset().type_vocab.size(), options);
  sato.Train(env->dataset(), env->splits());
  return sato.EvaluateTypes(env->dataset(), env->splits().test);
}

}  // namespace doduo::experiments
