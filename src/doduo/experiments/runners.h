#ifndef DODUO_EXPERIMENTS_RUNNERS_H_
#define DODUO_EXPERIMENTS_RUNNERS_H_

#include <memory>

#include "doduo/baselines/sato.h"
#include "doduo/baselines/sherlock.h"
#include "doduo/experiments/env.h"

namespace doduo::experiments {

/// Knobs distinguishing the DODUO variants of the paper's experiments.
struct DoduoVariant {
  /// DODUO / DOSOLO vs DOSOLO_SCol.
  core::InputMode input_mode = core::InputMode::kTableWise;
  /// kTypesAndRelations = DODUO (multi-task); single-task = DOSOLO. Unset
  /// (-1) uses the environment default.
  int tasks = -1;  // casts to core::TaskSet when >= 0
  /// MaxToken/col of Tables 8/11.
  int max_tokens_per_column = 32;
  /// +metadata variants of Table 3.
  bool include_metadata = false;
  /// TURL baseline: restrict attention with the visibility matrix.
  bool turl_visibility_mask = false;
  /// Initialize the encoder from the MLM-pre-trained weights (the paper's
  /// "pre-trained LM"; false = the random-init ablation of Appendix A.5).
  bool from_pretrained = true;
  /// Fraction of the training split used (Figure 4).
  double train_fraction = 1.0;
  /// Override the default epoch count (0 = keep).
  int epochs = 0;
  /// Varies the fine-tuning seed.
  uint64_t seed_offset = 0;
};

/// A fine-tuned model with its evaluation results; the model, serializer,
/// and trainer stay alive for follow-up analyses (embeddings, attention).
struct DoduoRun {
  core::EvalResult types;
  core::EvalResult relations;  // empty unless the relation task trained
  core::TrainHistory history;
  std::unique_ptr<core::DoduoModel> model;
  std::unique_ptr<table::TableSerializer> serializer;
  std::unique_ptr<core::Trainer> trainer;
  bool has_relations = false;
};

/// Fine-tunes and evaluates one DODUO variant on the environment's dataset.
DoduoRun RunDoduo(Env* env, const DoduoVariant& variant);

/// Same, on an alternative dataset/splits (the Table 6 shuffled-rows /
/// shuffled-columns ablations pre-transform the dataset).
DoduoRun RunDoduoOn(Env* env,
                    const table::ColumnAnnotationDataset& dataset,
                    const table::DatasetSplits& splits,
                    const DoduoVariant& variant);

/// Trains and evaluates the Sherlock baseline on the environment.
core::EvalResult RunSherlock(Env* env);

/// Trains and evaluates the Sato baseline (single-label datasets only).
core::EvalResult RunSato(Env* env);

}  // namespace doduo::experiments

#endif  // DODUO_EXPERIMENTS_RUNNERS_H_
