#ifndef DODUO_EXPERIMENTS_ENV_H_
#define DODUO_EXPERIMENTS_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/trainer.h"
#include "doduo/synth/corpus_generator.h"
#include "doduo/synth/table_generator.h"
#include "doduo/transformer/mlm.h"

namespace doduo::experiments {

/// Which benchmark the environment reproduces.
enum class BenchmarkMode { kWikiTable, kVizNet };

/// Knobs of a benchmark environment. Defaults are the standard experiment
/// scale; bench binaries multiply table counts and epochs by DODUO_SCALE.
struct EnvOptions {
  BenchmarkMode mode = BenchmarkMode::kWikiTable;
  int num_tables = 1000;
  int min_rows = 3;
  int max_rows = 6;
  double single_column_fraction = 0.0;  // VizNet "Full" population
  double distractor_prob = 0.35;  // off-topic columns (VizNet mode only)
  uint64_t seed = 42;

  // Tokenizer.
  int vocab_size = 3000;

  // Encoder scale (the miniature BERT substitute).
  int hidden_dim = 64;
  int num_layers = 2;
  int num_heads = 4;
  int ffn_dim = 256;
  int max_positions = 192;
  float dropout = 0.1f;

  // MLM pre-training. Zeros mean "auto": mode-calibrated defaults
  // (WikiTable: 5 epochs / 40 list mentions; VizNet: 10 / 120 — the
  // VizNet corpus is smaller and its tables are numeric-heavy, so it
  // needs the stronger schedule).
  int pretrain_epochs = 0;
  int pretrain_batch_size = 16;
  double pretrain_learning_rate = 1e-3;
  int corpus_fact_mentions = 2;
  int corpus_type_mentions = 1;
  int corpus_list_mentions = 0;

  /// Reuse a cached pre-trained checkpoint when the cache key matches
  /// (DODUO_CACHE_DIR, default "doduo_cache/").
  bool use_cache = true;
};

/// A fully materialized benchmark: knowledge base, labeled dataset with
/// splits, WordPiece vocabulary, and an MLM-pre-trained encoder (lazily
/// trained, cached on disk). Bench binaries construct one Env per dataset
/// variant and fine-tune models from it.
class Env {
 public:
  explicit Env(EnvOptions options);
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  const EnvOptions& options() const { return options_; }
  const synth::KnowledgeBase& kb() const { return kb_; }
  table::ColumnAnnotationDataset& dataset() { return dataset_; }
  const table::ColumnAnnotationDataset& dataset() const { return dataset_; }
  const table::DatasetSplits& splits() const { return splits_; }
  const text::Vocab& vocab() const { return vocab_; }
  const text::WordPieceTokenizer& tokenizer() const { return *tokenizer_; }

  /// Encoder configuration with the vocabulary size filled in.
  transformer::TransformerConfig EncoderConfig() const;

  /// A DODUO configuration for this benchmark with the standard
  /// fine-tuning hyperparameters; callers adjust variant knobs
  /// (input_mode, tasks, serializer) before building the model.
  core::DoduoConfig MakeDoduoConfig() const;

  /// Copies the MLM-pre-trained weights into `model`'s encoder,
  /// pre-training (or loading from cache) on first use.
  void InitializeFromPretrained(core::DoduoModel* model);

  /// The standalone pre-trained LM scorer (not fine-tuned), for probing.
  transformer::MlmPretrainer* PretrainedLm();

 private:
  void EnsurePretrained();
  std::string CacheKey() const;

  EnvOptions options_;
  synth::KnowledgeBase kb_;
  table::ColumnAnnotationDataset dataset_;
  table::DatasetSplits splits_;
  text::Vocab vocab_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;

  // Pre-trained LM, materialized lazily.
  std::unique_ptr<transformer::BertModel> pretrained_encoder_;
  std::unique_ptr<transformer::MlmHead> mlm_head_;
  std::unique_ptr<transformer::MlmPretrainer> pretrainer_;
};

/// Scales a count by the DODUO_SCALE environment variable (min 1).
int Scaled(int count);

}  // namespace doduo::experiments

#endif  // DODUO_EXPERIMENTS_ENV_H_
