#ifndef DODUO_SERVE_BATCHER_H_
#define DODUO_SERVE_BATCHER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/replica_pool.h"
#include "doduo/table/table.h"
#include "doduo/util/metrics.h"
#include "doduo/util/mutex.h"
#include "doduo/util/status.h"
#include "doduo/util/thread_annotations.h"

namespace doduo::serve {

/// Per-column predicted type names for one table — the payload of a
/// successful annotate response.
using TypePrediction = std::vector<std::vector<std::string>>;

/// Invoked exactly once per submitted request, from a batcher worker thread
/// (or synchronously from Submit on queue-full rejection / from Stop when
/// draining). Must not call back into the batcher.
using AnnotateCallback = std::function<void(util::Result<TypePrediction>)>;

/// Per-column outcomes for one table on the dirty-input path — the payload
/// of a kAnnotateRobustResponse.
using RobustPrediction = std::vector<core::ColumnOutcome>;

/// Same delivery contract as AnnotateCallback. The Result is non-OK only
/// for batcher-level rejections (queue full, shutting down); the robust
/// annotation path itself never fails a table.
using RobustCallback = std::function<void(util::Result<RobustPrediction>)>;

struct PendingRequest {
  uint64_t id = 0;
  table::Table table;
  /// Exactly one of `callback` / `robust_callback` is set; it decides
  /// which annotation path the request takes when its batch runs.
  AnnotateCallback callback;
  RobustCallback robust_callback;
  bool sanitize = true;         // robust requests only
  double abstain_below = 0.0;   // robust requests only
  int64_t enqueue_us = 0;  // stamped by BatchQueue::Enqueue
};

/// The deterministic half of dynamic batching (DESIGN §12): a FIFO of
/// pending requests with the two flush triggers — batch full, or the
/// OLDEST pending request has waited max_wait_us. No threads, no clocks:
/// every transition takes an explicit `now_us`, so unit tests drive the
/// state machine step by step with a synthetic timeline.
class BatchQueue {
 public:
  BatchQueue(int max_batch_size, int64_t max_wait_us, int max_queue_depth);

  /// Enqueues (stamping request.enqueue_us = now_us). Rejects with
  /// kResourceExhausted — the backpressure signal — when max_queue_depth
  /// requests are already waiting; on rejection the request is NOT moved
  /// from, so the caller still owns its callback.
  [[nodiscard]] util::Status Enqueue(PendingRequest&& request, int64_t now_us);

  /// True when CutBatch(now_us) would return a non-empty batch: a full
  /// batch is waiting, or the front request's deadline has passed.
  bool Ready(int64_t now_us) const;

  /// Pops the next batch — the oldest min(size, max_batch_size) requests,
  /// in FIFO order — if Ready(now_us) or `force`. Empty vector otherwise.
  std::vector<PendingRequest> CutBatch(int64_t now_us, bool force);

  /// Absolute µs timestamp at which the front request must flush, or -1
  /// when the queue is empty. The scheduling hint for timed waits.
  int64_t NextDeadlineUs() const;

  size_t size() const { return queue_.size(); }
  int max_batch_size() const { return max_batch_size_; }
  int64_t max_wait_us() const { return max_wait_us_; }

 private:
  int max_batch_size_;
  int64_t max_wait_us_;
  int max_queue_depth_;
  std::deque<PendingRequest> queue_;
};

struct BatcherOptions {
  int max_batch_size = 8;
  int64_t max_wait_us = 2000;
  int max_queue_depth = 256;
  /// Worker threads == replicas consumed from the pool (clamped to the
  /// pool's replica count).
  int num_workers = 1;
  /// Injectable monotonic clock; nullptr = steady_clock. Tests pair a fake
  /// clock with manual_drain so nothing ever really waits.
  std::function<int64_t()> clock_us;
  /// When true no worker threads start; the owner pumps batches through
  /// DrainOnce(). Deterministic-test mode.
  bool manual_drain = false;
};

/// Coalesces concurrent single-table annotate requests into batches for
/// Annotator::AnnotateTypesBatch. Worker thread w owns replica w of the
/// ReplicaPool for its whole lifetime, so batches on different workers run
/// concurrently without sharing forward state, while all replicas share one
/// immutable weight snapshot.
///
/// Flush policy: a worker cuts a batch as soon as max_batch_size requests
/// wait, or the oldest request has waited max_wait_us. A full batch whose
/// AnnotateTypesBatch call fails is retried per-request, so one malformed
/// table rejects only its own submitter, never its co-batched neighbours.
///
/// Stop() (and the destructor) drains: every request already accepted by
/// Submit still gets its callback, with a real result.
class DynamicBatcher {
 public:
  DynamicBatcher(core::ReplicaPool* replicas, BatcherOptions options);
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  /// Enqueues one table. The callback fires exactly once: immediately with
  /// kResourceExhausted when the queue is full (backpressure — the caller
  /// should surface the status and keep the connection usable), later with
  /// the annotation result otherwise.
  void Submit(uint64_t id, table::Table table, AnnotateCallback callback);

  /// Enqueues one table on the dirty-input path. Robust and plain requests
  /// share the queue and flush triggers; when a mixed batch runs, robust
  /// requests are grouped by their sanitize flag so each group makes one
  /// AnnotateTypesRobustBatch call, and the abstention threshold is applied
  /// per request afterwards (core::ApplyAbstention), so co-batched clients
  /// with different thresholds never contaminate each other.
  void SubmitRobust(uint64_t id, table::Table table, bool sanitize,
                    double abstain_below, RobustCallback callback);

  /// manual_drain mode: cuts at most one batch (force = flush even if
  /// neither trigger fired) and runs it synchronously on replica 0.
  /// Returns how many requests were completed.
  size_t DrainOnce(bool force);

  /// Stops workers after draining every accepted request. Idempotent.
  void Stop();

  size_t queue_depth() const;

 private:
  void WorkerLoop(int replica_index);
  /// Runs one cut batch on `replica_index` and fires its callbacks. Called
  /// with mu_ released: inference must never serialize against Submit.
  void RunBatch(std::vector<PendingRequest> batch, int replica_index)
      DODUO_EXCLUDES(mu_);
  /// Shared Submit/SubmitRobust tail: enqueue-or-reject `request`, firing
  /// whichever callback it carries synchronously on rejection.
  void PushRequest(PendingRequest request);
  /// Runs the plain requests of a batch (indices into `batch`) through one
  /// AnnotateTypesBatch call, with the per-request fallback on failure.
  void RunPlainGroup(const core::Annotator* annotator,
                     std::vector<PendingRequest>& batch,
                     const std::vector<size_t>& indices);
  /// Runs one sanitize-homogeneous robust group through a single
  /// AnnotateTypesRobustBatch call, then applies each request's own
  /// abstention threshold.
  void RunRobustGroup(const core::Annotator* annotator,
                      std::vector<PendingRequest>& batch,
                      const std::vector<size_t>& indices, bool sanitize);
  int64_t NowUs() const;

  core::ReplicaPool* replicas_;
  BatcherOptions options_;

  mutable util::Mutex mu_{"serve.batcher"};
  util::CondVar cv_;
  BatchQueue queue_ DODUO_GUARDED_BY(mu_);
  bool stopping_ DODUO_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written by ctor and Stop only

  // Cached metric handles (DESIGN §10: look up once, record in loops).
  util::Histogram* queue_wait_us_;
  util::Histogram* batch_assembly_us_;
  util::Histogram* inference_us_;
  util::Histogram* batch_size_;
  util::Counter* requests_total_;
  util::Counter* robust_requests_total_;
  util::Counter* requests_rejected_;
  util::Counter* batches_total_;
  util::Counter* batch_fallbacks_;
};

}  // namespace doduo::serve

#endif  // DODUO_SERVE_BATCHER_H_
