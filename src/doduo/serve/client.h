#ifndef DODUO_SERVE_CLIENT_H_
#define DODUO_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/serve/protocol.h"
#include "doduo/serve/socket_io.h"
#include "doduo/table/table.h"
#include "doduo/util/status.h"

namespace doduo::serve {

/// Synchronous client for a doduo_serve endpoint: one TCP connection, one
/// outstanding request at a time (request ids still increment, so traffic
/// from a pipelining client stays matchable). Not thread-safe; give each
/// thread its own Client.
class Client {
 public:
  /// Connects to host:port.
  [[nodiscard]] static util::Result<Client> Connect(const std::string& host,
                                                    int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Round-trips one table; returns the per-column predicted type names.
  /// A server-side kErrorResponse comes back as its Status.
  [[nodiscard]] util::Result<std::vector<std::vector<std::string>>>
  AnnotateTypes(const table::Table& table);

  /// Round-trips one table on the dirty-input path: every column comes
  /// back as a ColumnOutcome (labels + calibrated confidence, abstention
  /// below `abstain_below`, or a machine-readable skip reason). Only
  /// transport or backpressure failures produce a non-OK Result.
  [[nodiscard]] util::Result<std::vector<core::ColumnOutcome>>
  AnnotateTypesRobust(const table::Table& table, bool sanitize = true,
                      double abstain_below = 0.0);

  /// Fetches the server's util::MetricsToJson() dump.
  [[nodiscard]] util::Result<std::string> Stats();

  /// Round-trips a ping frame (liveness + framing check).
  [[nodiscard]] util::Status Ping();

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Sends `request` (stamping a fresh id) and blocks for the response
  /// carrying the same id. `expected` is the success frame type; an
  /// kErrorResponse is surfaced as its embedded Status.
  [[nodiscard]] util::Result<Frame> RoundTrip(Frame request,
                                              FrameType expected);

  UniqueFd fd_;
  FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
};

}  // namespace doduo::serve

#endif  // DODUO_SERVE_CLIENT_H_
