#ifndef DODUO_SERVE_SERVER_H_
#define DODUO_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doduo/core/replica_pool.h"
#include "doduo/serve/batcher.h"
#include "doduo/serve/protocol.h"
#include "doduo/serve/socket_io.h"
#include "doduo/util/metrics.h"
#include "doduo/util/mutex.h"
#include "doduo/util/status.h"
#include "doduo/util/thread_annotations.h"

namespace doduo::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the assigned port back with port().
  int port = 0;
  int backlog = 64;
  BatcherOptions batcher;
};

/// The doduo_serve daemon core (DESIGN §12): a TCP listener speaking the
/// protocol.h frame format, thread-per-connection readers, and a
/// DynamicBatcher that coalesces annotate requests across connections onto
/// the ReplicaPool.
///
/// Concurrency shape: the accept thread only accepts; each connection gets
/// a reader thread that decodes frames and answers pings/stats inline;
/// annotate requests are handed to the batcher, whose worker threads invoke
/// a completion callback that writes the response frame back under the
/// connection's write mutex (responses to pipelined requests may therefore
/// interleave out of submission order — clients match on request id).
/// Every loop polls with a short timeout so Stop() converges without
/// tearing sockets out from under readers; Stop() drains the batcher, so
/// every accepted request is answered before the listener goes away.
class Server {
 public:
  /// `replicas` must outlive the server.
  Server(core::ReplicaPool* replicas, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread. Fails (without leaking
  /// threads) when the address cannot be bound.
  [[nodiscard]] util::Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, winds down connections, and drains the batcher.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Blocks until Stop() is called (daemon main threads park here).
  void Wait();

  /// Waits at most `timeout_us` for Stop() to complete; returns true once
  /// stopped. The daemon main loop polls this between checks of its
  /// async-signal shutdown flag (signal handlers must not call Stop(),
  /// which locks).
  bool WaitFor(int64_t timeout_us);

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  /// Handles one decoded frame; false => close the connection.
  bool HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);

  core::ReplicaPool* replicas_;
  ServerOptions options_;
  DynamicBatcher batcher_;
  UniqueFd listen_fd_;
  int port_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  util::Mutex conn_mu_{"serve.server.conn"};
  std::vector<std::thread> connection_threads_ DODUO_GUARDED_BY(conn_mu_);
  util::Mutex stop_mu_{"serve.server.stop"};
  util::CondVar stop_cv_;
  bool stopped_ DODUO_GUARDED_BY(stop_mu_) = false;

  util::Histogram* e2e_us_;
  util::Counter* protocol_errors_;
};

}  // namespace doduo::serve

#endif  // DODUO_SERVE_SERVER_H_
