#include "doduo/serve/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace doduo::serve {

namespace {

using util::Status;

Status Errno(const char* what) {
  // strerror() hands back a static buffer shared across threads; the GNU
  // strerror_r either fills `buf` or returns an immutable static string,
  // both safe to read concurrently (connection threads all come through
  // here on I/O errors).
  char buf[128];
  return Status::IoError(std::string(what) + ": " +
                         strerror_r(errno, buf, sizeof(buf)));
}

/// Parses host as a dotted quad; "localhost" maps to 127.0.0.1. No DNS —
/// the server and tests only ever bind/connect loopback or explicit IPs.
Status FillAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                               : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host address: " + host);
  }
  return Status::Ok();
}

/// Waits for `events` on fd. Returns true when ready, false on timeout.
util::Result<bool> PollOne(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

void UniqueFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<UniqueFd> ListenTcp(const std::string& host, int port,
                                 int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr;
  if (Status s = FillAddr(host, port, &addr); !s.ok()) return s;
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

util::Result<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

util::Result<UniqueFd> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  auto ready = PollOne(listen_fd, POLLIN, timeout_ms);
  if (!ready.ok()) return ready.status();
  if (!ready.value()) return UniqueFd();  // timeout: caller checks stop flag
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR) continue;
    // The peer may have gone away between poll and accept; that is a
    // timeout-shaped non-event, not a server error.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return UniqueFd();
    }
    return Errno("accept");
  }
}

util::Result<UniqueFd> ConnectTcp(const std::string& host, int port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr;
  if (Status s = FillAddr(host, port, &addr); !s.ok()) return s;
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("connect");
  }
}

util::Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

util::Status ShutdownWrite(int fd) {
  if (::shutdown(fd, SHUT_WR) != 0 && errno != ENOTCONN) {
    return Errno("shutdown");
  }
  return Status::Ok();
}

util::Result<RecvResult> RecvSome(int fd, char* buffer, size_t cap,
                                  int timeout_ms) {
  auto ready = PollOne(fd, POLLIN, timeout_ms);
  if (!ready.ok()) return ready.status();
  if (!ready.value()) return RecvResult{IoEvent::kTimeout, 0};
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, cap, 0);
    if (n > 0) return RecvResult{IoEvent::kData, static_cast<size_t>(n)};
    if (n == 0) return RecvResult{IoEvent::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return RecvResult{IoEvent::kTimeout, 0};
    }
    return Errno("recv");
  }
}

}  // namespace doduo::serve
