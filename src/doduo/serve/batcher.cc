#include "doduo/serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

namespace doduo::serve {

namespace {

using util::Status;

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// -- BatchQueue ---------------------------------------------------------------

BatchQueue::BatchQueue(int max_batch_size, int64_t max_wait_us,
                       int max_queue_depth)
    : max_batch_size_(std::max(1, max_batch_size)),
      max_wait_us_(std::max<int64_t>(0, max_wait_us)),
      max_queue_depth_(std::max(1, max_queue_depth)) {}

util::Status BatchQueue::Enqueue(PendingRequest&& request, int64_t now_us) {
  if (queue_.size() >= static_cast<size_t>(max_queue_depth_)) {
    return Status::ResourceExhausted(
        "annotation queue full (" + std::to_string(queue_.size()) +
        " pending, depth limit " + std::to_string(max_queue_depth_) +
        "); retry later");
  }
  request.enqueue_us = now_us;
  queue_.push_back(std::move(request));
  return Status::Ok();
}

bool BatchQueue::Ready(int64_t now_us) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= static_cast<size_t>(max_batch_size_)) return true;
  return now_us >= queue_.front().enqueue_us + max_wait_us_;
}

std::vector<PendingRequest> BatchQueue::CutBatch(int64_t now_us, bool force) {
  std::vector<PendingRequest> batch;
  if (queue_.empty() || (!force && !Ready(now_us))) return batch;
  const size_t n =
      std::min(queue_.size(), static_cast<size_t>(max_batch_size_));
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

int64_t BatchQueue::NextDeadlineUs() const {
  if (queue_.empty()) return -1;
  return queue_.front().enqueue_us + max_wait_us_;
}

// -- DynamicBatcher -----------------------------------------------------------

DynamicBatcher::DynamicBatcher(core::ReplicaPool* replicas,
                               BatcherOptions options)
    : replicas_(replicas),
      options_(std::move(options)),
      queue_(options_.max_batch_size, options_.max_wait_us,
             options_.max_queue_depth),
      queue_wait_us_(util::GetHistogram("serve.queue_wait_us")),
      batch_assembly_us_(util::GetHistogram("serve.batch_assembly_us")),
      inference_us_(util::GetHistogram("serve.inference_us")),
      batch_size_(util::GetHistogram("serve.batch_size")),
      requests_total_(util::GetCounter("serve.requests_total")),
      robust_requests_total_(util::GetCounter("serve.robust_requests_total")),
      requests_rejected_(util::GetCounter("serve.requests_rejected")),
      batches_total_(util::GetCounter("serve.batches_total")),
      batch_fallbacks_(util::GetCounter("serve.batch_fallbacks")) {
  if (options_.manual_drain) return;
  const int workers = std::max(
      1, std::min(options_.num_workers, replicas_->num_replicas()));
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

DynamicBatcher::~DynamicBatcher() { Stop(); }

int64_t DynamicBatcher::NowUs() const {
  return options_.clock_us ? options_.clock_us() : SteadyNowUs();
}

void DynamicBatcher::Submit(uint64_t id, table::Table table,
                            AnnotateCallback callback) {
  requests_total_->Increment();
  PendingRequest request;
  request.id = id;
  request.table = std::move(table);
  request.callback = std::move(callback);
  PushRequest(std::move(request));
}

void DynamicBatcher::SubmitRobust(uint64_t id, table::Table table,
                                  bool sanitize, double abstain_below,
                                  RobustCallback callback) {
  requests_total_->Increment();
  robust_requests_total_->Increment();
  PendingRequest request;
  request.id = id;
  request.table = std::move(table);
  request.robust_callback = std::move(callback);
  request.sanitize = sanitize;
  request.abstain_below = abstain_below;
  PushRequest(std::move(request));
}

void DynamicBatcher::PushRequest(PendingRequest request) {
  Status pushed = Status::Ok();
  {
    util::MutexLock lock(&mu_);
    if (stopping_) {
      pushed = Status::ResourceExhausted("batcher is shutting down");
    } else {
      // Enqueue only moves from `request` on success, so a rejected request
      // still owns its callback here.
      pushed = queue_.Enqueue(std::move(request), NowUs());
    }
  }
  if (!pushed.ok()) {
    // Backpressure: reject synchronously, exactly one callback either way.
    requests_rejected_->Increment();
    if (request.robust_callback) {
      request.robust_callback(std::move(pushed));
    } else {
      request.callback(std::move(pushed));
    }
    return;
  }
  cv_.NotifyOne();
}

size_t DynamicBatcher::DrainOnce(bool force) {
  std::vector<PendingRequest> batch;
  {
    util::MutexLock lock(&mu_);
    batch = queue_.CutBatch(NowUs(), force);
  }
  const size_t n = batch.size();
  if (n > 0) RunBatch(std::move(batch), 0);
  return n;
}

void DynamicBatcher::Stop() {
  {
    util::MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Manual mode (and a zero-worker edge) drains here; threaded workers
  // already drained before exiting.
  while (DrainOnce(/*force=*/true) > 0) {
  }
}

size_t DynamicBatcher::queue_depth() const {
  util::MutexLock lock(&mu_);
  return queue_.size();
}

void DynamicBatcher::WorkerLoop(int replica_index) {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      util::MutexLock lock(&mu_);
      // Wait until a flush trigger fires or we are told to stop. The timed
      // wait targets the front request's deadline so flush-on-deadline
      // never depends on more traffic arriving.
      for (;;) {
        if (stopping_ || queue_.Ready(NowUs())) break;
        const int64_t deadline = queue_.NextDeadlineUs();
        if (deadline < 0) {
          cv_.Wait(&mu_);
        } else {
          const int64_t wait_us = std::max<int64_t>(1, deadline - NowUs());
          (void)cv_.WaitFor(&mu_, wait_us);
        }
      }
      batch = queue_.CutBatch(NowUs(), /*force=*/stopping_);
      if (batch.empty()) {
        if (stopping_) return;
        continue;
      }
    }
    // Inference runs with mu_ released so Submit never waits on a forward
    // pass.
    RunBatch(std::move(batch), replica_index);
    // More work may be ready (e.g. a burst deeper than one batch); let a
    // sibling grab it while this worker loops back to the queue.
    cv_.NotifyOne();
  }
}

void DynamicBatcher::RunBatch(std::vector<PendingRequest> batch,
                              int replica_index) {
  // Debug guard: worker w is the sole user of replica w while this batch
  // runs; two workers sharing an index is a protocol bug and aborts.
  core::ReplicaPool::ScopedUse replica_use(replicas_, replica_index);
  const int64_t cut_us = NowUs();
  int64_t oldest_us = cut_us;
  // Plain and robust requests coalesce in one queue but take different
  // annotation calls; robust requests additionally split by sanitize flag
  // (the one option that changes the shared computation — abstention is
  // applied per request after it).
  std::vector<size_t> plain;
  std::vector<size_t> robust_sanitized;
  std::vector<size_t> robust_raw;
  for (size_t i = 0; i < batch.size(); ++i) {
    const PendingRequest& request = batch[i];
    queue_wait_us_->Record(
        static_cast<uint64_t>(std::max<int64_t>(0, cut_us - request.enqueue_us)));
    oldest_us = std::min(oldest_us, request.enqueue_us);
    if (request.robust_callback) {
      (request.sanitize ? robust_sanitized : robust_raw).push_back(i);
    } else {
      plain.push_back(i);
    }
  }
  // Assembly latency: how long the batch took to fill from its first
  // request to the cut.
  batch_assembly_us_->Record(
      static_cast<uint64_t>(std::max<int64_t>(0, cut_us - oldest_us)));
  batch_size_->Record(batch.size());
  batches_total_->Increment();

  const core::Annotator* annotator = replicas_->annotator(replica_index);
  RunPlainGroup(annotator, batch, plain);
  RunRobustGroup(annotator, batch, robust_sanitized, /*sanitize=*/true);
  RunRobustGroup(annotator, batch, robust_raw, /*sanitize=*/false);
}

void DynamicBatcher::RunPlainGroup(const core::Annotator* annotator,
                                   std::vector<PendingRequest>& batch,
                                   const std::vector<size_t>& indices) {
  if (indices.empty()) return;
  std::vector<table::Table> tables;
  tables.reserve(indices.size());
  for (size_t i : indices) tables.push_back(batch[i].table);
  auto result = [&] {
    util::ScopedTimer timer(inference_us_, "serve.inference");
    return annotator->AnnotateTypesBatch(
        std::span<const table::Table>(tables));
  }();
  if (result.ok()) {
    std::vector<std::vector<std::vector<std::string>>> all =
        std::move(result).value();
    for (size_t g = 0; g < indices.size(); ++g) {
      batch[indices[g]].callback(std::move(all[g]));
    }
    return;
  }
  // A batch call fails as a unit ("table N of M ..."), which would punish
  // every co-batched request for one bad table. Retry each request alone so
  // only the actual offender sees its error.
  batch_fallbacks_->Increment();
  for (size_t i : indices) {
    batch[i].callback(annotator->AnnotateTypes(batch[i].table));
  }
}

void DynamicBatcher::RunRobustGroup(const core::Annotator* annotator,
                                    std::vector<PendingRequest>& batch,
                                    const std::vector<size_t>& indices,
                                    bool sanitize) {
  if (indices.empty()) return;
  std::vector<table::Table> tables;
  tables.reserve(indices.size());
  for (size_t i : indices) tables.push_back(batch[i].table);
  core::AnnotateOptions options;
  options.sanitize = sanitize;
  // abstain_below stays 0 here: outcomes are computed once for the group,
  // then each request's own threshold is applied to its copy below.
  auto all = [&] {
    util::ScopedTimer timer(inference_us_, "serve.inference");
    return annotator->AnnotateTypesRobustBatch(
        std::span<const table::Table>(tables), options);
  }();
  for (size_t g = 0; g < indices.size(); ++g) {
    PendingRequest& request = batch[indices[g]];
    RobustPrediction outcomes = std::move(all[g]);
    for (core::ColumnOutcome& outcome : outcomes) {
      core::ApplyAbstention(&outcome, request.abstain_below);
    }
    request.robust_callback(std::move(outcomes));
  }
}

}  // namespace doduo::serve
