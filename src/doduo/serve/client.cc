#include "doduo/serve/client.h"

#include <utility>

namespace doduo::serve {

namespace {

using util::Status;

constexpr size_t kRecvChunkBytes = 64 * 1024;

}  // namespace

util::Result<Client> Client::Connect(const std::string& host, int port) {
  auto fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return Client(std::move(fd).value());
}

util::Result<Frame> Client::RoundTrip(Frame request, FrameType expected) {
  request.request_id = next_request_id_++;
  std::string wire;
  if (Status s = EncodeFrame(request, &wire); !s.ok()) return s;
  if (Status s = SendAll(fd_.get(), wire.data(), wire.size()); !s.ok()) {
    return s;
  }
  char chunk[kRecvChunkBytes];
  for (;;) {
    Frame frame;
    auto more = decoder_.Next(&frame);
    if (!more.ok()) return more.status();
    if (more.value()) {
      if (frame.request_id != request.request_id) continue;  // stale/unmatched
      if (frame.type == FrameType::kErrorResponse) {
        return Status(frame.status, std::move(frame.payload));
      }
      if (frame.type != expected) {
        return Status::InvalidArgument("unexpected response frame type");
      }
      return frame;
    }
    auto received = RecvSome(fd_.get(), chunk, sizeof(chunk),
                             /*timeout_ms=*/-1);
    if (!received.ok()) return received.status();
    if (received.value().event == IoEvent::kEof) {
      return Status::IoError("server closed the connection mid-request");
    }
    decoder_.Feed(std::string_view(chunk, received.value().bytes));
  }
}

util::Result<std::vector<std::vector<std::string>>> Client::AnnotateTypes(
    const table::Table& table) {
  Frame request;
  request.type = FrameType::kAnnotateRequest;
  EncodeTablePayload(table, &request.payload);
  auto response = RoundTrip(std::move(request), FrameType::kAnnotateResponse);
  if (!response.ok()) return response.status();
  return DecodeTypesPayload(response.value().payload);
}

util::Result<std::vector<core::ColumnOutcome>> Client::AnnotateTypesRobust(
    const table::Table& table, bool sanitize, double abstain_below) {
  Frame request;
  request.type = FrameType::kAnnotateRobustRequest;
  EncodeRobustRequestPayload(table, sanitize, abstain_below,
                             &request.payload);
  auto response =
      RoundTrip(std::move(request), FrameType::kAnnotateRobustResponse);
  if (!response.ok()) return response.status();
  return DecodeOutcomesPayload(response.value().payload);
}

util::Result<std::string> Client::Stats() {
  Frame request;
  request.type = FrameType::kStatsRequest;
  auto response = RoundTrip(std::move(request), FrameType::kStatsResponse);
  if (!response.ok()) return response.status();
  return std::move(response.value().payload);
}

util::Status Client::Ping() {
  Frame request;
  request.type = FrameType::kPingRequest;
  request.payload = "doduo";
  auto response = RoundTrip(std::move(request), FrameType::kPingResponse);
  if (!response.ok()) return response.status();
  if (response.value().payload != "doduo") {
    return Status::IoError("ping payload not echoed");
  }
  return Status::Ok();
}

}  // namespace doduo::serve
