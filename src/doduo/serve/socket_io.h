#ifndef DODUO_SERVE_SOCKET_IO_H_
#define DODUO_SERVE_SOCKET_IO_H_

#include <cstddef>
#include <string>
#include <utility>

#include "doduo/util/status.h"

namespace doduo::serve {

// Status-returning wrappers around POSIX TCP sockets. This header/.cc pair
// is the ONLY place in the serve tree allowed to touch the raw socket API:
// doduo_lint's serve-raw-io rule flags send/recv/read/write/close/... in
// any other serve/ file, so every I/O result flows through the
// [[nodiscard]] Status surface (DESIGN §11/§12) and EINTR/partial-write
// handling lives in exactly one place.

/// RAII file descriptor. Move-only; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to host:port (port 0 = ephemeral;
/// read the assigned port back with LocalPort).
[[nodiscard]] util::Result<UniqueFd> ListenTcp(const std::string& host,
                                               int port, int backlog);

/// The local port a bound socket listens on.
[[nodiscard]] util::Result<int> LocalPort(int fd);

/// Waits up to `timeout_ms` for a pending connection. Returns an invalid
/// UniqueFd on timeout (OK status), so accept loops can poll a stop flag.
[[nodiscard]] util::Result<UniqueFd> AcceptWithTimeout(int listen_fd,
                                                       int timeout_ms);

/// Blocking TCP connect to host:port.
[[nodiscard]] util::Result<UniqueFd> ConnectTcp(const std::string& host,
                                                int port);

/// Writes all `size` bytes (handles partial writes and EINTR; SIGPIPE is
/// suppressed — a closed peer surfaces as an IoError).
[[nodiscard]] util::Status SendAll(int fd, const char* data, size_t size);

/// Half-closes the write side so a blocked peer read sees EOF.
[[nodiscard]] util::Status ShutdownWrite(int fd);

/// One receive attempt with a timeout.
enum class IoEvent {
  kData,     // `bytes` payload bytes were read
  kTimeout,  // nothing arrived within timeout_ms
  kEof,      // orderly peer shutdown
};
struct RecvResult {
  IoEvent event = IoEvent::kTimeout;
  size_t bytes = 0;
};

/// Reads up to `cap` bytes into `buffer`, waiting at most `timeout_ms`
/// (-1 = forever). Errors (ECONNRESET, ...) come back as IoError.
[[nodiscard]] util::Result<RecvResult> RecvSome(int fd, char* buffer,
                                                size_t cap, int timeout_ms);

}  // namespace doduo::serve

#endif  // DODUO_SERVE_SOCKET_IO_H_
