#include "doduo/serve/protocol.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace doduo::serve {

namespace {

using util::Status;

void AppendU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void AppendU64(uint64_t v, std::string* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

uint32_t ReadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t ReadU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void AppendLengthPrefixed(std::string_view bytes, std::string* out) {
  AppendU32(static_cast<uint32_t>(bytes.size()), out);
  out->append(bytes);
}

/// Doubles travel as their IEEE-754 bit pattern in a LE u64; decoders
/// re-validate range, so a hostile bit pattern is just a rejected value.
void AppendF64(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

/// Bounds-checked cursor over a payload. Every read validates against the
/// remaining bytes before touching (or sizing anything by) them.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  [[nodiscard]] Status ReadU32Field(const char* what, uint32_t* out) {
    if (remaining() < 4) {
      return Status::InvalidArgument(
          std::string("payload truncated reading ") + what);
    }
    *out = ReadU32(data_.data() + pos_);
    pos_ += 4;
    return Status::Ok();
  }

  /// Reads an IEEE-754 double (u64 LE bit pattern); any non-finite value —
  /// NaN, ±inf, or hostile bit soup — is rejected here, so downstream code
  /// only ever sees real numbers.
  [[nodiscard]] Status ReadF64Field(const char* what, double* out) {
    if (remaining() < 8) {
      return Status::InvalidArgument(
          std::string("payload truncated reading ") + what);
    }
    const uint64_t bits = ReadU64(data_.data() + pos_);
    pos_ += 8;
    std::memcpy(out, &bits, sizeof(*out));
    if (!std::isfinite(*out)) {
      return Status::InvalidArgument(std::string(what) + " is not finite");
    }
    return Status::Ok();
  }

  /// Reads a u32 length then that many bytes. The claim is bounded by the
  /// bytes actually present before the string is sized.
  [[nodiscard]] Status ReadString(const char* what, std::string* out) {
    uint32_t len = 0;
    if (Status s = ReadU32Field(what, &len); !s.ok()) return s;
    if (len > remaining()) {
      return Status::InvalidArgument(
          std::string(what) + " claims " + std::to_string(len) +
          " bytes but only " + std::to_string(remaining()) + " remain");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  /// Reads a u32 element count for elements of at least `min_bytes_each`
  /// encoded bytes; an impossible count fails before any container is
  /// sized by it.
  [[nodiscard]] Status ReadCount(const char* what, size_t min_bytes_each,
                                 uint32_t* out) {
    if (Status s = ReadU32Field(what, out); !s.ok()) return s;
    if (static_cast<uint64_t>(*out) * min_bytes_each > remaining()) {
      return Status::InvalidArgument(
          std::string(what) + " claims " + std::to_string(*out) +
          " entries but only " + std::to_string(remaining()) +
          " payload bytes remain");
    }
    return Status::Ok();
  }

  [[nodiscard]] Status ExpectEnd(const char* what) {
    if (remaining() != 0) {
      return Status::InvalidArgument(std::to_string(remaining()) +
                                     " trailing bytes after " + what);
    }
    return Status::Ok();
  }

  /// The unconsumed tail, for handing off to a nested payload decoder.
  std::string_view rest() const { return data_.substr(pos_); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(util::StatusCode::kResourceExhausted);

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kAnnotateRequest) &&
         type <= static_cast<uint8_t>(FrameType::kAnnotateRobustResponse);
}

util::Status EncodeFrame(const Frame& frame, std::string* out) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds kMaxPayloadBytes");
  }
  out->reserve(out->size() + kFrameHeaderBytes + frame.payload.size());
  out->push_back(static_cast<char>(kFrameMagic0));
  out->push_back(static_cast<char>(kFrameMagic1));
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(frame.type));
  out->push_back(static_cast<char>(frame.status));
  out->append(3, '\0');  // reserved
  AppendU64(frame.request_id, out);
  AppendU32(static_cast<uint32_t>(frame.payload.size()), out);
  out->append(frame.payload);
  return Status::Ok();
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily so a long-lived connection doesn't grow without bound.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

util::Result<bool> FrameDecoder::Next(Frame* out) {
  if (!poisoned_.ok()) return poisoned_;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) {
    // Validate what we can see of the header so garbage fails fast instead
    // of waiting forever for a "payload" that will never come.
    const char* h = buffer_.data() + pos_;
    if (available >= 1 && static_cast<uint8_t>(h[0]) != kFrameMagic0) {
      poisoned_ = Status::InvalidArgument("bad frame magic");
      return poisoned_;
    }
    if (available >= 2 && static_cast<uint8_t>(h[1]) != kFrameMagic1) {
      poisoned_ = Status::InvalidArgument("bad frame magic");
      return poisoned_;
    }
    return false;
  }
  const char* h = buffer_.data() + pos_;
  if (static_cast<uint8_t>(h[0]) != kFrameMagic0 ||
      static_cast<uint8_t>(h[1]) != kFrameMagic1) {
    poisoned_ = Status::InvalidArgument("bad frame magic");
    return poisoned_;
  }
  if (static_cast<uint8_t>(h[2]) != kProtocolVersion) {
    poisoned_ = Status::InvalidArgument(
        "unsupported protocol version " +
        std::to_string(static_cast<int>(static_cast<uint8_t>(h[2]))));
    return poisoned_;
  }
  if (!IsKnownFrameType(static_cast<uint8_t>(h[3]))) {
    poisoned_ = Status::InvalidArgument(
        "unknown frame type " +
        std::to_string(static_cast<int>(static_cast<uint8_t>(h[3]))));
    return poisoned_;
  }
  if (static_cast<uint8_t>(h[4]) > kMaxStatusCode) {
    poisoned_ = Status::InvalidArgument("invalid status byte");
    return poisoned_;
  }
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    poisoned_ = Status::InvalidArgument("nonzero reserved header bytes");
    return poisoned_;
  }
  const uint32_t length = ReadU32(h + 16);
  if (length > kMaxPayloadBytes) {
    // Rejected before any buffer is sized by the claim.
    poisoned_ = Status::InvalidArgument(
        "frame claims " + std::to_string(length) +
        " payload bytes, above the " + std::to_string(kMaxPayloadBytes) +
        "-byte limit");
    return poisoned_;
  }
  if (available < kFrameHeaderBytes + length) return false;
  out->type = static_cast<FrameType>(static_cast<uint8_t>(h[3]));
  out->status = static_cast<util::StatusCode>(static_cast<uint8_t>(h[4]));
  out->request_id = ReadU64(h + 8);
  out->payload.assign(h + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  return true;
}

void EncodeTablePayload(const table::Table& table, std::string* out) {
  AppendLengthPrefixed(table.id(), out);
  AppendU32(static_cast<uint32_t>(table.num_columns()), out);
  for (const table::Column& column : table.columns()) {
    AppendLengthPrefixed(column.name, out);
    AppendU32(static_cast<uint32_t>(column.values.size()), out);
    for (const std::string& value : column.values) {
      AppendLengthPrefixed(value, out);
    }
  }
}

util::Result<table::Table> DecodeTablePayload(std::string_view payload) {
  PayloadReader reader(payload);
  std::string id;
  if (Status s = reader.ReadString("table id", &id); !s.ok()) return s;
  table::Table table(std::move(id));
  uint32_t num_columns = 0;
  // Each column encodes at least name_len + num_values = 8 bytes.
  if (Status s = reader.ReadCount("column count", 8, &num_columns); !s.ok()) {
    return s;
  }
  for (uint32_t c = 0; c < num_columns; ++c) {
    table::Column column;
    if (Status s = reader.ReadString("column name", &column.name); !s.ok()) {
      return s;
    }
    uint32_t num_values = 0;
    if (Status s = reader.ReadCount("value count", 4, &num_values); !s.ok()) {
      return s;
    }
    column.values.reserve(num_values);
    for (uint32_t v = 0; v < num_values; ++v) {
      std::string value;
      if (Status s = reader.ReadString("cell value", &value); !s.ok()) {
        return s;
      }
      column.values.push_back(std::move(value));
    }
    table.AddColumn(std::move(column));
  }
  if (Status s = reader.ExpectEnd("table payload"); !s.ok()) return s;
  return table;
}

void EncodeTypesPayload(const std::vector<std::vector<std::string>>& types,
                        std::string* out) {
  AppendU32(static_cast<uint32_t>(types.size()), out);
  for (const std::vector<std::string>& labels : types) {
    AppendU32(static_cast<uint32_t>(labels.size()), out);
    for (const std::string& label : labels) {
      AppendLengthPrefixed(label, out);
    }
  }
}

util::Result<std::vector<std::vector<std::string>>> DecodeTypesPayload(
    std::string_view payload) {
  PayloadReader reader(payload);
  uint32_t num_columns = 0;
  if (Status s = reader.ReadCount("column count", 4, &num_columns); !s.ok()) {
    return s;
  }
  std::vector<std::vector<std::string>> types;
  types.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t num_labels = 0;
    if (Status s = reader.ReadCount("label count", 4, &num_labels); !s.ok()) {
      return s;
    }
    std::vector<std::string> labels;
    labels.reserve(num_labels);
    for (uint32_t l = 0; l < num_labels; ++l) {
      std::string label;
      if (Status s = reader.ReadString("type label", &label); !s.ok()) {
        return s;
      }
      labels.push_back(std::move(label));
    }
    types.push_back(std::move(labels));
  }
  if (Status s = reader.ExpectEnd("types payload"); !s.ok()) return s;
  return types;
}

namespace {

// Wire flag bits. Unknown bits are rejected on decode so they stay
// available for future meanings instead of being silently shipped.
constexpr uint32_t kRobustFlagSanitize = 1u << 0;
constexpr uint32_t kOutcomeFlagAbstained = 1u << 0;

}  // namespace

void EncodeRobustRequestPayload(const table::Table& table, bool sanitize,
                                double abstain_below, std::string* out) {
  AppendU32(sanitize ? kRobustFlagSanitize : 0u, out);
  AppendF64(abstain_below, out);
  EncodeTablePayload(table, out);
}

util::Result<RobustRequest> DecodeRobustRequestPayload(
    std::string_view payload) {
  PayloadReader reader(payload);
  uint32_t flags = 0;
  if (Status s = reader.ReadU32Field("robust flags", &flags); !s.ok()) {
    return s;
  }
  if ((flags & ~kRobustFlagSanitize) != 0) {
    return Status::InvalidArgument("unknown robust request flag bits");
  }
  RobustRequest request;
  request.sanitize = (flags & kRobustFlagSanitize) != 0;
  if (Status s = reader.ReadF64Field("abstain threshold",
                                     &request.abstain_below);
      !s.ok()) {
    return s;
  }
  if (request.abstain_below < 0.0) {
    return Status::InvalidArgument("abstain threshold is negative");
  }
  // The table decoder owns the tail, including the trailing-bytes check.
  auto table = DecodeTablePayload(reader.rest());
  if (!table.ok()) return table.status();
  request.table = std::move(table).value();
  return request;
}

void EncodeOutcomesPayload(const std::vector<core::ColumnOutcome>& outcomes,
                           std::string* out) {
  AppendU32(static_cast<uint32_t>(outcomes.size()), out);
  for (const core::ColumnOutcome& outcome : outcomes) {
    AppendU32(static_cast<uint32_t>(outcome.labels.size()), out);
    for (const std::string& label : outcome.labels) {
      AppendLengthPrefixed(label, out);
    }
    AppendF64(outcome.confidence, out);
    AppendLengthPrefixed(outcome.skipped_reason, out);
    AppendU32(outcome.abstained ? kOutcomeFlagAbstained : 0u, out);
  }
}

util::Result<std::vector<core::ColumnOutcome>> DecodeOutcomesPayload(
    std::string_view payload) {
  PayloadReader reader(payload);
  uint32_t num_columns = 0;
  // Each outcome encodes at least num_labels + confidence + reason_len +
  // flags = 20 bytes.
  if (Status s = reader.ReadCount("outcome count", 20, &num_columns);
      !s.ok()) {
    return s;
  }
  std::vector<core::ColumnOutcome> outcomes;
  outcomes.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    core::ColumnOutcome outcome;
    uint32_t num_labels = 0;
    if (Status s = reader.ReadCount("label count", 4, &num_labels); !s.ok()) {
      return s;
    }
    outcome.labels.reserve(num_labels);
    for (uint32_t l = 0; l < num_labels; ++l) {
      std::string label;
      if (Status s = reader.ReadString("outcome label", &label); !s.ok()) {
        return s;
      }
      outcome.labels.push_back(std::move(label));
    }
    if (Status s = reader.ReadF64Field("confidence", &outcome.confidence);
        !s.ok()) {
      return s;
    }
    if (outcome.confidence < 0.0 || outcome.confidence > 1.0) {
      return Status::InvalidArgument("confidence outside [0, 1]");
    }
    if (Status s = reader.ReadString("skip reason", &outcome.skipped_reason);
        !s.ok()) {
      return s;
    }
    uint32_t flags = 0;
    if (Status s = reader.ReadU32Field("outcome flags", &flags); !s.ok()) {
      return s;
    }
    if ((flags & ~kOutcomeFlagAbstained) != 0) {
      return Status::InvalidArgument("unknown outcome flag bits");
    }
    outcome.abstained = (flags & kOutcomeFlagAbstained) != 0;
    outcomes.push_back(std::move(outcome));
  }
  if (Status s = reader.ExpectEnd("outcomes payload"); !s.ok()) return s;
  return outcomes;
}

}  // namespace doduo::serve
