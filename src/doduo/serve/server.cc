#include "doduo/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "doduo/serve/protocol.h"
#include "doduo/util/logging.h"
#include "doduo/util/mutex.h"

namespace doduo::serve {

namespace {

using util::Status;

constexpr int kPollMs = 100;  // stop-flag check cadence for blocking loops
constexpr size_t kRecvChunkBytes = 64 * 1024;

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One accepted client. Shared between the reader thread and in-flight
/// batcher callbacks; the fd closes when the last reference drops, so a
/// response never races a close.
struct Server::Connection {
  explicit Connection(UniqueFd in_fd) : fd(std::move(in_fd)) {}

  /// Serializes and writes one frame. Concurrent callers (reader thread vs.
  /// batcher callbacks) interleave whole frames, never bytes.
  void WriteFrame(const Frame& frame) {
    std::string wire;
    if (Status s = EncodeFrame(frame, &wire); !s.ok()) {
      DODUO_LOG(Warning) << "dropping unencodable response frame: "
                         << s.ToString();
      return;
    }
    util::MutexLock lock(&write_mu);
    if (Status s = SendAll(fd.get(), wire.data(), wire.size()); !s.ok()) {
      // The peer hung up mid-conversation; its reader loop will see the
      // close too, so just note it.
      DODUO_LOG(Debug) << "response write failed: " << s.ToString();
    }
  }

  UniqueFd fd;  // never reassigned after construction; safe to read
  util::Mutex write_mu{"serve.connection.write"};
};

Server::Server(core::ReplicaPool* replicas, ServerOptions options)
    : replicas_(replicas),
      options_(std::move(options)),
      batcher_(replicas, options_.batcher),
      e2e_us_(util::GetHistogram("serve.e2e_us")),
      protocol_errors_(util::GetCounter("serve.protocol_errors")) {}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  auto listener = ListenTcp(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(listener).value();
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = port.value();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Already stopped (or stopping on another thread); just wait it out.
    Wait();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    util::MutexLock lock(&conn_mu_);
    for (std::thread& t : connection_threads_) t.join();
    connection_threads_.clear();
  }
  // Readers are gone; drain every accepted request. Callbacks still hold
  // their Connection references, so the drained responses reach the wire.
  batcher_.Stop();
  {
    util::MutexLock lock(&stop_mu_);
    stopped_ = true;
  }
  stop_cv_.NotifyAll();
}

void Server::Wait() {
  util::MutexLock lock(&stop_mu_);
  while (!stopped_) stop_cv_.Wait(&stop_mu_);
}

bool Server::WaitFor(int64_t timeout_us) {
  util::MutexLock lock(&stop_mu_);
  if (!stopped_) (void)stop_cv_.WaitFor(&stop_mu_, timeout_us);
  return stopped_;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = AcceptWithTimeout(listen_fd_.get(), kPollMs);
    if (!accepted.ok()) {
      DODUO_LOG(Warning) << "accept failed: " << accepted.status().ToString();
      continue;
    }
    if (!accepted.value().valid()) continue;  // timeout tick
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(std::move(accepted).value());
    util::MutexLock lock(&conn_mu_);
    connection_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable {
          ConnectionLoop(std::move(conn));
        });
  }
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder;
  char chunk[kRecvChunkBytes];
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto received = RecvSome(conn->fd.get(), chunk, sizeof(chunk), kPollMs);
    if (!received.ok()) {
      DODUO_LOG(Debug) << "connection read failed: "
                       << received.status().ToString();
      return;
    }
    if (received.value().event == IoEvent::kEof) return;
    if (received.value().event == IoEvent::kTimeout) continue;
    decoder.Feed(std::string_view(chunk, received.value().bytes));
    for (;;) {
      Frame frame;
      auto more = decoder.Next(&frame);
      if (!more.ok()) {
        // Protocol violation: answer once (best effort) and hang up.
        protocol_errors_->Increment();
        Frame error;
        error.type = FrameType::kErrorResponse;
        error.status = more.status().code();
        error.request_id = frame.request_id;
        error.payload = more.status().message();
        conn->WriteFrame(error);
        return;
      }
      if (!more.value()) break;
      if (!HandleFrame(conn, std::move(frame))) return;
    }
  }
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  switch (frame.type) {
    case FrameType::kPingRequest: {
      Frame reply;
      reply.type = FrameType::kPingResponse;
      reply.request_id = frame.request_id;
      reply.payload = std::move(frame.payload);
      conn->WriteFrame(reply);
      return true;
    }
    case FrameType::kStatsRequest: {
      Frame reply;
      reply.type = FrameType::kStatsResponse;
      reply.request_id = frame.request_id;
      reply.payload = util::MetricsToJson();
      conn->WriteFrame(reply);
      return true;
    }
    case FrameType::kAnnotateRequest: {
      auto table = DecodeTablePayload(frame.payload);
      if (!table.ok()) {
        // Well-framed but malformed payload: a request-level error. The
        // connection stays usable.
        Frame reply;
        reply.type = FrameType::kErrorResponse;
        reply.status = table.status().code();
        reply.request_id = frame.request_id;
        reply.payload = table.status().message();
        conn->WriteFrame(reply);
        return true;
      }
      const int64_t start_us = SteadyNowUs();
      const uint64_t request_id = frame.request_id;
      util::Histogram* e2e_us = e2e_us_;
      batcher_.Submit(
          request_id, std::move(table).value(),
          [conn, request_id, start_us,
           e2e_us](util::Result<TypePrediction> result) {
            Frame reply;
            reply.request_id = request_id;
            if (result.ok()) {
              reply.type = FrameType::kAnnotateResponse;
              EncodeTypesPayload(result.value(), &reply.payload);
            } else {
              reply.type = FrameType::kErrorResponse;
              reply.status = result.status().code();
              reply.payload = result.status().message();
            }
            conn->WriteFrame(reply);
            e2e_us->Record(static_cast<uint64_t>(
                std::max<int64_t>(0, SteadyNowUs() - start_us)));
          });
      return true;
    }
    case FrameType::kAnnotateRobustRequest: {
      auto decoded = DecodeRobustRequestPayload(frame.payload);
      if (!decoded.ok()) {
        Frame reply;
        reply.type = FrameType::kErrorResponse;
        reply.status = decoded.status().code();
        reply.request_id = frame.request_id;
        reply.payload = decoded.status().message();
        conn->WriteFrame(reply);
        return true;
      }
      RobustRequest request = std::move(decoded).value();
      const int64_t start_us = SteadyNowUs();
      const uint64_t request_id = frame.request_id;
      util::Histogram* e2e_us = e2e_us_;
      batcher_.SubmitRobust(
          request_id, std::move(request.table), request.sanitize,
          request.abstain_below,
          [conn, request_id, start_us,
           e2e_us](util::Result<RobustPrediction> result) {
            Frame reply;
            reply.request_id = request_id;
            if (result.ok()) {
              reply.type = FrameType::kAnnotateRobustResponse;
              EncodeOutcomesPayload(result.value(), &reply.payload);
            } else {
              // Only batcher-level backpressure lands here; the robust
              // annotation path itself never fails a table.
              reply.type = FrameType::kErrorResponse;
              reply.status = result.status().code();
              reply.payload = result.status().message();
            }
            conn->WriteFrame(reply);
            e2e_us->Record(static_cast<uint64_t>(
                std::max<int64_t>(0, SteadyNowUs() - start_us)));
          });
      return true;
    }
    default: {
      // A client must not send response-typed frames; treat as a protocol
      // violation and close.
      protocol_errors_->Increment();
      Frame reply;
      reply.type = FrameType::kErrorResponse;
      reply.status = util::StatusCode::kInvalidArgument;
      reply.request_id = frame.request_id;
      reply.payload = "unexpected frame type from client";
      conn->WriteFrame(reply);
      return false;
    }
  }
}

}  // namespace doduo::serve
