#ifndef DODUO_SERVE_PROTOCOL_H_
#define DODUO_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/table/table.h"
#include "doduo/util/status.h"

namespace doduo::serve {

// The doduo_serve wire format (DESIGN §12): length-prefixed binary frames
// over TCP, all integers little-endian.
//
//   offset  size  field
//   0       2     magic    0xD0 0xD0
//   2       1     version  kProtocolVersion
//   3       1     type     FrameType
//   4       1     status   util::StatusCode (0 on requests and OK responses)
//   5       3     reserved must be zero
//   8       8     id       request id, chosen by the client, echoed verbatim
//                          in the matching response (responses to pipelined
//                          requests may arrive out of submission order)
//   16      4     length   payload byte count, <= kMaxPayloadBytes
//   20      len   payload
//
// Every multi-byte payload field is a u32 count or byte length; decoders
// bound every claimed length against the bytes actually present BEFORE
// allocating (the checkpoint-loader discipline of DESIGN §10, extended to
// the wire). A frame that cannot possibly be valid — bad magic, unknown
// version or type, nonzero reserved bytes, or a payload claim above
// kMaxPayloadBytes — is a connection-fatal protocol error: the server
// answers with a best-effort kErrorResponse and closes.

inline constexpr uint8_t kFrameMagic0 = 0xD0;
inline constexpr uint8_t kFrameMagic1 = 0xD0;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
/// Hard ceiling on one frame's payload; a length prefix above this is
/// rejected before any buffer is sized by it.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

enum class FrameType : uint8_t {
  kAnnotateRequest = 1,   // payload: encoded table
  kAnnotateResponse = 2,  // payload: encoded per-column type lists
  kStatsRequest = 3,      // payload: empty
  kStatsResponse = 4,     // payload: util::MetricsToJson() text
  kPingRequest = 5,       // payload: echoed back verbatim
  kPingResponse = 6,
  kErrorResponse = 7,  // status = the error code; payload: message text
  // The dirty-input path (DESIGN §15), added without a version bump: new
  // frame types are ignored-by-old-servers additive, and every other frame
  // is unchanged byte for byte.
  kAnnotateRobustRequest = 8,   // payload: robust options + encoded table
  kAnnotateRobustResponse = 9,  // payload: encoded per-column outcomes
};

/// True for the FrameType values a well-formed peer may send.
bool IsKnownFrameType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kPingRequest;
  util::StatusCode status = util::StatusCode::kOk;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends the encoded frame to `out`. Fails (without writing) when the
/// payload exceeds kMaxPayloadBytes.
[[nodiscard]] util::Status EncodeFrame(const Frame& frame, std::string* out);

/// Incremental frame decoder: feed raw bytes as they arrive, then drain
/// complete frames. A returned error is a protocol violation and poisons
/// the decoder — the connection should be closed (every later Next() call
/// repeats the error).
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer.
  void Feed(std::string_view bytes);

  /// kOk + true: `*out` holds the next frame. kOk + false: the buffered
  /// bytes end mid-frame (a disconnect here is a clean truncation, not an
  /// error). Non-OK: protocol violation, close the connection.
  [[nodiscard]] util::Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  util::Status poisoned_;  // first protocol error, sticky
};

// -- Payload codecs ---------------------------------------------------------
//
// Table:    id_len u32, id bytes, num_columns u32, then per column:
//           name_len u32, name bytes, num_values u32, then per value:
//           value_len u32, value bytes.
// Types:    num_columns u32, then per column: num_labels u32, then per
//           label: label_len u32, label bytes.
// Robust request:
//           flags u32 (bit 0 = run the sanitizer pass; other bits must be
//           zero), abstain_below f64 (IEEE-754 bits as u64 LE; must be
//           finite and >= 0), then a Table payload.
// Outcomes: num_columns u32, then per column: num_labels u32, per label
//           label_len u32 + label bytes, confidence f64 (finite, in
//           [0, 1]), reason_len u32 + reason bytes, flags u32 (bit 0 =
//           abstained; other bits must be zero).
//
// Decoders validate every count and length against the remaining payload
// before allocating, so a mutated count cannot trigger a runaway
// allocation; trailing bytes after a complete object are an error.

void EncodeTablePayload(const table::Table& table, std::string* out);
[[nodiscard]] util::Result<table::Table> DecodeTablePayload(
    std::string_view payload);

void EncodeTypesPayload(const std::vector<std::vector<std::string>>& types,
                        std::string* out);
[[nodiscard]] util::Result<std::vector<std::vector<std::string>>>
DecodeTypesPayload(std::string_view payload);

/// A decoded kAnnotateRobustRequest: the table plus the two dirty-input
/// knobs that travel on the wire. Sanitizer thresholds stay server-side.
struct RobustRequest {
  table::Table table;
  bool sanitize = true;
  double abstain_below = 0.0;
};

void EncodeRobustRequestPayload(const table::Table& table, bool sanitize,
                                double abstain_below, std::string* out);
[[nodiscard]] util::Result<RobustRequest> DecodeRobustRequestPayload(
    std::string_view payload);

void EncodeOutcomesPayload(const std::vector<core::ColumnOutcome>& outcomes,
                           std::string* out);
[[nodiscard]] util::Result<std::vector<core::ColumnOutcome>>
DecodeOutcomesPayload(std::string_view payload);

}  // namespace doduo::serve

#endif  // DODUO_SERVE_PROTOCOL_H_
