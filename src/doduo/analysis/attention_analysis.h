#ifndef DODUO_ANALYSIS_ATTENTION_ANALYSIS_H_
#define DODUO_ANALYSIS_ATTENTION_ANALYSIS_H_

#include <string>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"

namespace doduo::analysis {

/// The Figure 6 artifact: for every pair of column types (i, j), how much
/// the contextualized representation of an i-column relies on j-columns,
/// measured from the last encoder layer's [CLS]→[CLS] attention,
/// head-averaged, and normalized so that uniform attention (pure
/// co-occurrence) maps to zero. The matrix is asymmetric by construction.
struct InterColumnDependency {
  std::vector<std::string> type_names;  // axis labels (types with support)
  std::vector<std::vector<double>> matrix;  // [types][types], 0 = neutral
  std::vector<std::vector<int64_t>> cooccurrence;  // pair sample counts
};

/// Aggregates [CLS]→[CLS] attention over the given tables. Each table
/// contributes attn(i→j) − 1/num_columns for its (type_i, type_j) pairs, so
/// positive entries mean "type_i's embedding draws more than its
/// co-occurrence share from type_j columns". Types never observed in a
/// multi-column table are dropped from the axes.
InterColumnDependency AnalyzeInterColumnDependency(
    core::DoduoModel* model, const table::TableSerializer& serializer,
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices);

/// Renders the dependency matrix as an aligned text heatmap (values ×100).
std::string RenderDependencyMatrix(const InterColumnDependency& dependency);

}  // namespace doduo::analysis

#endif  // DODUO_ANALYSIS_ATTENTION_ANALYSIS_H_
