#include "doduo/analysis/attention_analysis.h"

#include <algorithm>
#include <cstdio>

#include "doduo/util/check.h"

namespace doduo::analysis {

InterColumnDependency AnalyzeInterColumnDependency(
    core::DoduoModel* model, const table::TableSerializer& serializer,
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) {
  DODUO_CHECK(model != nullptr);
  model->set_training(false);
  const int num_types = dataset.type_vocab.size();

  std::vector<std::vector<double>> sums(
      static_cast<size_t>(num_types),
      std::vector<double>(static_cast<size_t>(num_types), 0.0));
  std::vector<std::vector<int64_t>> counts(
      static_cast<size_t>(num_types),
      std::vector<int64_t>(static_cast<size_t>(num_types), 0));

  for (size_t index : table_indices) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    const int n = annotated.table.num_columns();
    if (n < 2) continue;  // a single column has no inter-column context
    const nn::Tensor attention = model->ColumnAttention(
        serializer.SerializeTable(annotated.table).value());
    DODUO_CHECK_EQ(attention.rows(), n);
    const double uniform = 1.0 / static_cast<double>(n);
    for (int i = 0; i < n; ++i) {
      const int type_i = annotated.column_types[static_cast<size_t>(i)][0];
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const int type_j =
            annotated.column_types[static_cast<size_t>(j)][0];
        sums[static_cast<size_t>(type_i)][static_cast<size_t>(type_j)] +=
            static_cast<double>(attention.at(i, j)) - uniform;
        ++counts[static_cast<size_t>(type_i)][static_cast<size_t>(type_j)];
      }
    }
  }

  // Keep only types observed in some pair.
  std::vector<int> kept;
  for (int t = 0; t < num_types; ++t) {
    int64_t support = 0;
    for (int u = 0; u < num_types; ++u) {
      support += counts[static_cast<size_t>(t)][static_cast<size_t>(u)] +
                 counts[static_cast<size_t>(u)][static_cast<size_t>(t)];
    }
    if (support > 0) kept.push_back(t);
  }

  InterColumnDependency result;
  for (int t : kept) result.type_names.push_back(dataset.type_vocab.Name(t));
  result.matrix.assign(kept.size(), std::vector<double>(kept.size(), 0.0));
  result.cooccurrence.assign(kept.size(),
                             std::vector<int64_t>(kept.size(), 0));
  for (size_t a = 0; a < kept.size(); ++a) {
    for (size_t b = 0; b < kept.size(); ++b) {
      const int64_t count = counts[static_cast<size_t>(kept[a])]
                                  [static_cast<size_t>(kept[b])];
      result.cooccurrence[a][b] = count;
      if (count > 0) {
        result.matrix[a][b] = sums[static_cast<size_t>(kept[a])]
                                  [static_cast<size_t>(kept[b])] /
                              static_cast<double>(count);
      }
    }
  }
  return result;
}

std::string RenderDependencyMatrix(
    const InterColumnDependency& dependency) {
  // Short axis labels: last path segment, clipped to 10 chars.
  auto short_name = [](const std::string& name) {
    const auto dot = name.rfind('.');
    std::string leaf = dot == std::string::npos ? name : name.substr(dot + 1);
    if (leaf.size() > 10) leaf.resize(10);
    return leaf;
  };

  std::string out = "rows rely on columns; values are 100x (attention - "
                    "co-occurrence share)\n";
  char buffer[32];
  out += std::string(11, ' ');
  for (const std::string& name : dependency.type_names) {
    std::snprintf(buffer, sizeof(buffer), " %10s",
                  short_name(name).c_str());
    out += buffer;
  }
  out += "\n";
  for (size_t i = 0; i < dependency.type_names.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%-11s",
                  short_name(dependency.type_names[i]).c_str());
    out += buffer;
    for (size_t j = 0; j < dependency.type_names.size(); ++j) {
      if (dependency.cooccurrence[i][j] == 0) {
        std::snprintf(buffer, sizeof(buffer), " %10s", ".");
      } else {
        std::snprintf(buffer, sizeof(buffer), " %10.2f",
                      100.0 * dependency.matrix[i][j]);
      }
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

}  // namespace doduo::analysis
