#include "doduo/synth/statistics.h"

#include <algorithm>

#include "doduo/util/string_util.h"

namespace doduo::synth {

DatasetStatistics ComputeStatistics(
    const table::ColumnAnnotationDataset& dataset) {
  DatasetStatistics stats;
  stats.num_tables = static_cast<int>(dataset.tables.size());

  std::vector<int> support(static_cast<size_t>(dataset.type_vocab.size()),
                           0);
  std::vector<long> numeric(static_cast<size_t>(dataset.type_vocab.size()),
                            0);
  std::vector<long> cells(static_cast<size_t>(dataset.type_vocab.size()),
                          0);
  long total_rows = 0;
  for (const auto& annotated : dataset.tables) {
    stats.num_columns += annotated.table.num_columns();
    stats.num_relations += static_cast<int>(annotated.relations.size());
    total_rows += annotated.table.num_rows();
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      const int type = annotated.column_types[static_cast<size_t>(c)][0];
      ++support[static_cast<size_t>(type)];
      for (const auto& value : annotated.table.column(c).values) {
        ++cells[static_cast<size_t>(type)];
        if (util::LooksNumeric(value)) ++numeric[static_cast<size_t>(type)];
      }
    }
  }
  if (stats.num_tables > 0) {
    stats.avg_columns_per_table =
        static_cast<double>(stats.num_columns) / stats.num_tables;
    stats.avg_rows_per_table =
        static_cast<double>(total_rows) / stats.num_tables;
  }
  for (int t = 0; t < dataset.type_vocab.size(); ++t) {
    if (support[static_cast<size_t>(t)] == 0) continue;
    ++stats.num_types_used;
    DatasetStatistics::TypeRow row;
    row.name = dataset.type_vocab.Name(t);
    row.support = support[static_cast<size_t>(t)];
    row.numeric_fraction =
        cells[static_cast<size_t>(t)] > 0
            ? static_cast<double>(numeric[static_cast<size_t>(t)]) /
                  static_cast<double>(cells[static_cast<size_t>(t)])
            : 0.0;
    stats.types.push_back(std::move(row));
  }
  std::sort(stats.types.begin(), stats.types.end(),
            [](const DatasetStatistics::TypeRow& a,
               const DatasetStatistics::TypeRow& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.name < b.name;
            });
  return stats;
}

std::string RenderStatistics(const DatasetStatistics& statistics,
                             int top_k) {
  std::string out;
  out += "tables: " + std::to_string(statistics.num_tables) +
         ", columns: " + std::to_string(statistics.num_columns) +
         ", relations: " + std::to_string(statistics.num_relations) +
         ", types in use: " + std::to_string(statistics.num_types_used) +
         "\n";
  out += "avg columns/table: " +
         util::FormatDouble(statistics.avg_columns_per_table, 2) +
         ", avg rows/table: " +
         util::FormatDouble(statistics.avg_rows_per_table, 2) + "\n";
  const int show =
      std::min<int>(top_k, static_cast<int>(statistics.types.size()));
  for (int i = 0; i < show; ++i) {
    const auto& row = statistics.types[static_cast<size_t>(i)];
    out += "  " + row.name + ": " + std::to_string(row.support) +
           " columns, %num " +
           util::FormatPercent(row.numeric_fraction, 1) + "\n";
  }
  return out;
}

}  // namespace doduo::synth
