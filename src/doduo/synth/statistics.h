#ifndef DODUO_SYNTH_STATISTICS_H_
#define DODUO_SYNTH_STATISTICS_H_

#include <string>
#include <vector>

#include "doduo/table/dataset.h"

namespace doduo::synth {

/// Aggregate statistics of a generated benchmark (the "Dataset
/// description" numbers of the paper's Table 2, plus per-type support and
/// numeric fractions used by the Table 5 analysis).
struct DatasetStatistics {
  int num_tables = 0;
  int num_columns = 0;
  int num_relations = 0;
  int num_types_used = 0;
  double avg_columns_per_table = 0.0;
  double avg_rows_per_table = 0.0;

  struct TypeRow {
    std::string name;
    int support = 0;          // labeled columns of this (primary) type
    double numeric_fraction = 0.0;  // %num over its cell values
  };
  /// Per-type rows, sorted by descending support.
  std::vector<TypeRow> types;
};

/// Computes statistics over the whole dataset.
DatasetStatistics ComputeStatistics(
    const table::ColumnAnnotationDataset& dataset);

/// Renders the headline numbers plus the `top_k` most frequent types.
std::string RenderStatistics(const DatasetStatistics& statistics,
                             int top_k = 10);

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_STATISTICS_H_
