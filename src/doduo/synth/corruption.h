#ifndef DODUO_SYNTH_CORRUPTION_H_
#define DODUO_SYNTH_CORRUPTION_H_

#include "doduo/table/dataset.h"
#include "doduo/util/rng.h"

namespace doduo::synth {

/// Dirty-data injection, implementing the robustness scenario of the
/// paper's "Clean data vs dirty data" future-work discussion (Appendix B):
/// real tables have missing, corrupted, and misplaced values, and a column
/// annotator should degrade gracefully under them.
struct CorruptionOptions {
  /// Probability that a cell is blanked out.
  double missing_prob = 0.0;
  /// Probability that a cell suffers a character-level typo (one character
  /// deleted, duplicated, or replaced).
  double typo_prob = 0.0;
  /// Probability that a cell is swapped with a random cell of a *different*
  /// column in the same table (a misplaced value).
  double misplace_prob = 0.0;
};

/// Applies cell-level corruption to one table, in place. Labels are not
/// touched: the ground truth of a corrupted column is still its type.
void CorruptTable(table::Table* table, const CorruptionOptions& options,
                  util::Rng* rng);

/// Applies CorruptTable to every table of a dataset copy and returns it.
table::ColumnAnnotationDataset CorruptDataset(
    const table::ColumnAnnotationDataset& dataset,
    const CorruptionOptions& options, util::Rng* rng);

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_CORRUPTION_H_
