#ifndef DODUO_SYNTH_CASE_STUDY_H_
#define DODUO_SYNTH_CASE_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doduo/table/table.h"

namespace doduo::synth {

/// The Section 7 case study: an "enterprise HR database" of 10 tables with
/// 50 columns over 15 semantic groups (dates, IP addresses, job titles,
/// unix timestamps, hh:mm timestamps, counts, statuses, file paths,
/// browsers, locations, search terms, ratings, company/review/user ids).
/// Semantically equivalent columns carry different names across tables,
/// which is what defeats name-based matching there.
struct CaseStudyData {
  std::vector<table::Table> tables;

  /// Ground-truth cluster id for every column, flattened in table order.
  std::vector<int> ground_truth;

  /// Names of the 15 ground-truth groups (index = cluster id).
  std::vector<std::string> group_names;

  int num_columns() const { return static_cast<int>(ground_truth.size()); }
};

/// Deterministically builds the case-study database. The group inventory
/// and table/column counts match the published scenario (10 tables, 50
/// columns, 15 clusters; a mix of string-like and integer-like columns).
CaseStudyData BuildCaseStudy(uint64_t seed);

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_CASE_STUDY_H_
