#include "doduo/synth/corpus_generator.h"

#include "doduo/util/check.h"

namespace doduo::synth {

CorpusGenerator::CorpusGenerator(const KnowledgeBase* kb) : kb_(kb) {
  DODUO_CHECK(kb != nullptr);
}

std::string CorpusGenerator::TypeStatement(const std::string& entity,
                                           const std::string& type_name) {
  return entity + " is " + KnowledgeBase::LeafWord(type_name) + " .";
}

std::string CorpusGenerator::RelationStatement(const std::string& subject,
                                               const std::string& phrase,
                                               const std::string& object) {
  return subject + " " + phrase + " " + object + " .";
}

std::vector<std::string> CorpusGenerator::Generate(
    const CorpusOptions& options) const {
  util::Rng rng(options.seed);
  std::vector<std::string> corpus;

  // Type statements: tie every surface form to its type word(s).
  for (int t = 0; t < kb_->num_types(); ++t) {
    const EntityType& type = kb_->type(t);
    for (const std::string& entity : type.entities) {
      for (int m = 0; m < options.type_mentions; ++m) {
        corpus.push_back(TypeStatement(entity, type.name));
      }
      for (const std::string& extra : type.extra_labels) {
        if (rng.Bernoulli(0.5)) {
          corpus.push_back(TypeStatement(entity, extra));
        }
      }
    }
  }

  // List statements: random same-type value runs, the column-shaped input.
  for (int t = 0; t < kb_->num_types(); ++t) {
    const EntityType& type = kb_->type(t);
    const std::string leaf = KnowledgeBase::LeafWord(type.name);
    for (int m = 0; m < options.list_mentions; ++m) {
      const size_t count = 2 + rng.NextUint64(4);  // 2-5 values
      std::string sentence;
      for (size_t i = 0; i < count; ++i) {
        if (i > 0) sentence += " ";
        sentence += type.entities[rng.NextUint64(type.entities.size())];
      }
      sentence += " are " + leaf + " .";
      corpus.push_back(std::move(sentence));
    }
  }

  // Fact statements: one sentence (repeated) per KB fact.
  for (int r = 0; r < kb_->num_relations(); ++r) {
    const RelationType& relation = kb_->relation(r);
    const EntityType& subjects = kb_->type(relation.subject_type);
    const EntityType& objects = kb_->type(relation.object_type);
    for (size_t s = 0; s < subjects.entities.size(); ++s) {
      const int object = kb_->FactObject(r, static_cast<int>(s));
      for (int m = 0; m < options.fact_mentions; ++m) {
        corpus.push_back(RelationStatement(
            subjects.entities[s], relation.phrase,
            objects.entities[static_cast<size_t>(object)]));
      }
    }
  }

  rng.Shuffle(&corpus);
  return corpus;
}

}  // namespace doduo::synth
