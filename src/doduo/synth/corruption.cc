#include "doduo/synth/corruption.h"

#include "doduo/util/check.h"

namespace doduo::synth {

namespace {

void ApplyTypo(std::string* value, util::Rng* rng) {
  if (value->empty()) return;
  const size_t pos = rng->NextUint64(value->size());
  switch (rng->NextUint64(3)) {
    case 0:  // delete one character
      value->erase(pos, 1);
      break;
    case 1:  // duplicate one character
      value->insert(pos, 1, (*value)[pos]);
      break;
    default:  // replace with a random lowercase letter
      (*value)[pos] = static_cast<char>('a' + rng->NextUint64(26));
      break;
  }
}

}  // namespace

void CorruptTable(table::Table* table, const CorruptionOptions& options,
                  util::Rng* rng) {
  DODUO_CHECK(table != nullptr);
  const int n = table->num_columns();
  for (int c = 0; c < n; ++c) {
    auto& values = table->mutable_column(c).values;
    for (size_t r = 0; r < values.size(); ++r) {
      if (options.missing_prob > 0.0 &&
          rng->Bernoulli(options.missing_prob)) {
        values[r].clear();
        continue;
      }
      if (options.typo_prob > 0.0 && rng->Bernoulli(options.typo_prob)) {
        ApplyTypo(&values[r], rng);
      }
      if (options.misplace_prob > 0.0 && n > 1 &&
          rng->Bernoulli(options.misplace_prob)) {
        // Swap with a random cell of another column.
        int other = c;
        while (other == c) {
          other = static_cast<int>(rng->NextUint64(n));
        }
        auto& other_values = table->mutable_column(other).values;
        if (!other_values.empty()) {
          const size_t other_row = rng->NextUint64(other_values.size());
          std::swap(values[r], other_values[other_row]);
        }
      }
    }
  }
}

table::ColumnAnnotationDataset CorruptDataset(
    const table::ColumnAnnotationDataset& dataset,
    const CorruptionOptions& options, util::Rng* rng) {
  table::ColumnAnnotationDataset corrupted = dataset;
  for (auto& annotated : corrupted.tables) {
    CorruptTable(&annotated.table, options, rng);
  }
  return corrupted;
}

}  // namespace doduo::synth
