#include "doduo/synth/knowledge_base.h"

#include <algorithm>

#include "doduo/util/check.h"
#include "doduo/util/string_util.h"

namespace doduo::synth {

namespace {

// ---------------------------------------------------------------------------
// Surface-form pools. Person-like types sample overlapping windows of the
// master name pool built from these lists; other types compose from their
// own word pools. All generation is seeded and deterministic.
// ---------------------------------------------------------------------------

constexpr const char* kFirstNames[] = {
    "george", "judy",    "warren", "david",  "john",   "bill",   "dick",
    "ian",    "simon",   "max",    "thomas", "derrick", "sofia", "anna",
    "maria",  "james",   "robert", "linda",  "susan",  "karen",  "peter",
    "laura",  "kevin",   "brian",  "nancy",  "steven", "emily",  "rachel",
    "daniel", "sarah",   "mark",   "paul",   "alice",  "helen",  "frank",
    "walter", "arthur",  "clara",  "edith",  "hugo",   "oscar",  "felix",
    "nora",   "iris",    "lucas",  "mona",   "ralph",  "vera",   "owen",
    "ruth",   "cecil",   "doris",  "edgar",  "fiona",  "gavin",  "hazel",
    "irving", "joan",    "keith",  "lydia",
};

constexpr const char* kLastNames[] = {
    "miller",   "coleman",  "morris",   "lasseter", "ranft",   "anderson",
    "bowers",   "fell",     "clement",  "frenais",  "nye",     "browne",
    "tyner",    "henry",    "smith",    "johnson",  "williams", "brown",
    "jones",    "garcia",   "davis",    "wilson",   "moore",   "taylor",
    "thomas",   "jackson",  "white",    "harris",   "martin",  "thompson",
    "robinson", "clark",    "lewis",    "lee",      "walker",  "hall",
    "allen",    "young",    "king",     "wright",   "scott",   "green",
    "baker",    "adams",    "nelson",   "hill",     "ramirez", "campbell",
    "mitchell", "roberts",  "carter",   "phillips", "evans",   "turner",
    "torres",   "parker",   "collins",  "edwards",  "stewart", "flores",
};

constexpr const char* kTitleAdjectives[] = {
    "happy",  "silent", "golden", "hidden", "broken", "crimson", "eternal",
    "frozen", "burning", "lost",  "secret", "wild",   "quiet",   "dark",
    "bright", "distant", "final", "first",  "last",   "brave",
};

constexpr const char* kTitleNouns[] = {
    "feet",    "cars",    "river",   "kingdom", "garden", "journey",
    "shadow",  "empire",  "horizon", "valley",  "storm",  "dream",
    "island",  "harvest", "voyage",  "legend",  "castle", "forest",
    "ocean",   "mountain", "city",   "night",   "dawn",   "winter",
};

constexpr const char* kCityPrefixes[] = {
    "brook", "east",  "west",  "north", "south", "lake",  "fair",
    "green", "oak",   "maple", "river", "stone", "ash",   "clear",
    "spring", "mill", "high",  "wood",  "bay",   "elm",
};

constexpr const char* kCitySuffixes[] = {
    "field", "ton",   "ville", "burg",  "port", "dale",  "wood",
    "view",  "ford",  "haven", "mont",  "side", "crest", "bury",
    "shore", "gate",  "brook", "land",  "ridge", "vale",
};

constexpr const char* kCountries[] = {
    "usa",      "uk",        "france",  "australia", "germany", "japan",
    "canada",   "italy",     "spain",   "brazil",    "india",   "china",
    "mexico",   "russia",    "sweden",  "norway",    "poland",  "egypt",
    "kenya",    "argentina", "chile",   "peru",      "greece",  "turkey",
    "ireland",  "portugal",  "austria", "belgium",   "denmark", "finland",
};

constexpr const char* kNationalities[] = {
    "american", "british",   "french",  "australian", "german",  "japanese",
    "canadian", "italian",   "spanish", "brazilian",  "indian",  "chinese",
    "mexican",  "russian",   "swedish", "norwegian",  "polish",  "egyptian",
    "kenyan",   "argentine", "chilean", "peruvian",   "greek",   "turkish",
};

constexpr const char* kMascots[] = {
    "hawks",   "tigers",  "eagles",  "lions",   "bears",   "wolves",
    "sharks",  "falcons", "panthers", "bulls",  "raiders", "rangers",
    "pirates", "knights", "giants",  "titans",  "comets",  "rockets",
    "storm",   "thunder",
};

constexpr const char* kMusicGenres[] = {
    "rock", "pop", "jazz", "blues", "folk", "metal", "country", "soul",
    "funk", "reggae", "classical", "electronic", "punk", "disco", "gospel",
};

constexpr const char* kFilmGenres[] = {
    "drama",     "comedy",   "animation", "thriller", "horror",
    "romance",   "western",  "musical",   "adventure", "documentary",
    "fantasy",   "mystery",  "biography", "war",       "noir",
};

constexpr const char* kRivers[] = {
    "amber", "willow", "falcon", "granite", "misty", "rapid", "serpent",
    "silver", "copper", "jade",  "crystal", "echo",  "raven", "swift",
    "thunder", "twin",  "upper", "lower",   "black", "white",
};

constexpr const char* kOrganisms[] = {
    "red oak",      "grey wolf",    "sea otter",    "snow leopard",
    "green turtle", "river trout",  "horned owl",   "black bear",
    "giant fern",   "blue whale",   "desert fox",   "marsh heron",
    "pine marten",  "rock lizard",  "field mouse",  "cave bat",
    "reef coral",   "dune beetle",  "moss frog",    "cliff swallow",
};

constexpr const char* kConstellations[] = {
    "orion",     "lyra",    "draco",   "cygnus",  "perseus", "auriga",
    "cassiopeia", "cepheus", "corvus", "crater",  "lepus",   "pictor",
    "volans",    "fornax",  "carina",  "vela",
};

constexpr const char* kRomanNumerals[] = {"i",  "ii", "iii", "iv", "v",
                                          "vi", "vii", "viii", "ix", "x"};

constexpr const char* kLanguages[] = {
    "english", "french",  "german",   "spanish",  "italian",  "japanese",
    "chinese", "russian", "arabic",   "hindi",    "portuguese", "dutch",
    "swedish", "korean",  "turkish",  "greek",    "polish",   "danish",
};

constexpr const char* kReligions[] = {
    "christian", "catholic", "protestant", "islam", "buddhist",
    "hindu",     "jewish",   "sikh",       "taoist", "shinto",
};

constexpr const char* kStatuses[] = {
    "active", "inactive", "pending", "closed", "open",
    "completed", "cancelled", "archived", "draft", "approved",
};

constexpr const char* kDays[] = {
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday", "mon",     "tue",       "wed",      "thu",    "fri",
};

constexpr const char* kClasses[] = {
    "a", "b", "c", "d", "first", "second", "third",
    "economy", "business", "premium", "standard", "deluxe",
};

constexpr const char* kDegrees[] = {
    "high school diploma", "associate degree",   "bachelor of science",
    "bachelor of arts",    "master of science",  "master of arts",
    "doctor of philosophy", "vocational training", "certificate program",
    "postgraduate diploma",
};

constexpr const char* kPositions[] = {
    "guard", "forward", "center", "striker", "keeper", "defender",
    "pitcher", "catcher", "captain", "midfielder",
};

constexpr const char* kProductNouns[] = {
    "lamp",   "desk",   "chair",  "kettle", "blender", "router",
    "camera", "speaker", "monitor", "keyboard", "charger", "backpack",
    "bottle", "helmet", "tent",   "drill",   "sander",  "mixer",
};

constexpr const char* kCompanyWords[] = {
    "apex",   "nova",   "vertex",  "summit", "orbit",  "pioneer",
    "quantum", "stellar", "fusion", "vector", "zenith", "atlas",
    "beacon", "cascade", "delta",  "ember",  "forge",  "harbor",
};

constexpr const char* kCompanySuffixes[] = {"inc", "corp", "ltd", "group",
                                            "labs", "systems", "works",
                                            "partners"};

constexpr const char* kStreetSuffixes[] = {"st", "ave", "rd", "blvd", "ln",
                                           "dr", "way", "ct"};

constexpr const char* kDescriptionWords[] = {
    "durable", "compact", "portable", "handmade", "vintage", "modern",
    "classic", "premium", "budget",   "ergonomic", "wireless", "foldable",
    "design",  "edition", "series",   "model",     "style",   "line",
};

template <size_t N>
std::vector<std::string> ToVector(const char* const (&items)[N]) {
  return std::vector<std::string>(items, items + N);
}

// Master person-name pool: first × last, deterministically shuffled.
std::vector<std::string> BuildPersonPool(util::Rng* rng, size_t count) {
  std::vector<std::string> pool;
  for (const char* first : kFirstNames) {
    for (const char* last : kLastNames) {
      pool.push_back(std::string(first) + " " + last);
    }
  }
  rng->Shuffle(&pool);
  pool.resize(std::min(count, pool.size()));
  return pool;
}

// A window [start, start+len) of the master pool; windows of different
// types overlap, which is what makes person columns ambiguous.
std::vector<std::string> Window(const std::vector<std::string>& master,
                                size_t start, size_t len) {
  DODUO_CHECK_LE(start + len, master.size());
  return std::vector<std::string>(master.begin() + start,
                                  master.begin() + start + len);
}

std::vector<std::string> BuildTitles(util::Rng* rng, size_t count,
                                     const std::string& glue) {
  std::vector<std::string> titles;
  for (const char* adj : kTitleAdjectives) {
    for (const char* noun : kTitleNouns) {
      titles.push_back(std::string(adj) + glue + noun);
    }
  }
  rng->Shuffle(&titles);
  titles.resize(std::min(count, titles.size()));
  return titles;
}

std::vector<std::string> BuildCities(util::Rng* rng, size_t count) {
  std::vector<std::string> cities;
  for (const char* prefix : kCityPrefixes) {
    for (const char* suffix : kCitySuffixes) {
      cities.push_back(std::string(prefix) + suffix);
    }
  }
  rng->Shuffle(&cities);
  cities.resize(std::min(count, cities.size()));
  return cities;
}

std::vector<std::string> BuildTeams(util::Rng* rng,
                                    const std::vector<std::string>& cities,
                                    size_t count) {
  std::vector<std::string> teams;
  for (const std::string& city : cities) {
    for (const char* mascot : kMascots) {
      teams.push_back(city + " " + mascot);
    }
  }
  rng->Shuffle(&teams);
  teams.resize(std::min(count, teams.size()));
  return teams;
}

std::vector<std::string> BuildYears(int from, int to) {
  std::vector<std::string> years;
  for (int y = from; y <= to; ++y) years.push_back(std::to_string(y));
  return years;
}

std::vector<std::string> BuildNumericPool(util::Rng* rng, size_t count,
                                          int64_t lo, int64_t hi) {
  std::vector<std::string> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pool.push_back(std::to_string(rng->UniformInt(lo, hi)));
  }
  return pool;
}

std::string WithThousandsSeparators(int64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// KnowledgeBase core.
// ---------------------------------------------------------------------------

const EntityType& KnowledgeBase::type(int id) const {
  DODUO_CHECK(id >= 0 && id < num_types());
  return types_[static_cast<size_t>(id)];
}

int KnowledgeBase::TypeId(const std::string& name) const {
  auto it = type_ids_.find(name);
  return it != type_ids_.end() ? it->second : -1;
}

const RelationType& KnowledgeBase::relation(int id) const {
  DODUO_CHECK(id >= 0 && id < num_relations());
  return relations_[static_cast<size_t>(id)];
}

int KnowledgeBase::RelationId(const std::string& name) const {
  auto it = relation_ids_.find(name);
  return it != relation_ids_.end() ? it->second : -1;
}

int KnowledgeBase::FactObject(int relation_id, int subject_index) const {
  DODUO_CHECK(relation_id >= 0 && relation_id < num_relations());
  const auto& facts = facts_[static_cast<size_t>(relation_id)];
  DODUO_CHECK(subject_index >= 0 &&
              subject_index < static_cast<int>(facts.size()));
  return facts[static_cast<size_t>(subject_index)];
}

std::string KnowledgeBase::LeafWord(const std::string& type_name) {
  const auto dot = type_name.rfind('.');
  return dot == std::string::npos ? type_name : type_name.substr(dot + 1);
}

int KnowledgeBase::AddType(EntityType type) {
  DODUO_CHECK(!type.entities.empty()) << "empty pool for " << type.name;
  DODUO_CHECK(type_ids_.find(type.name) == type_ids_.end())
      << "duplicate type " << type.name;
  const int id = static_cast<int>(types_.size());
  type_ids_.emplace(type.name, id);
  types_.push_back(std::move(type));
  return id;
}

int KnowledgeBase::AddRelation(const std::string& name,
                               const std::string& phrase, int subject_type,
                               int object_type, util::Rng* rng) {
  DODUO_CHECK(relation_ids_.find(name) == relation_ids_.end())
      << "duplicate relation " << name;
  const int id = static_cast<int>(relations_.size());
  relation_ids_.emplace(name, id);
  relations_.push_back({name, phrase, subject_type, object_type});
  // One object fact per subject entity, drawn uniformly from the object
  // pool. These facts are the ground truth for table cells, the corpus
  // sentences, and the probing targets.
  const size_t num_subjects =
      types_[static_cast<size_t>(subject_type)].entities.size();
  const size_t num_objects =
      types_[static_cast<size_t>(object_type)].entities.size();
  std::vector<int> facts(num_subjects);
  for (size_t s = 0; s < num_subjects; ++s) {
    facts[s] = static_cast<int>(rng->NextUint64(num_objects));
  }
  facts_.push_back(std::move(facts));
  return id;
}

// ---------------------------------------------------------------------------
// WikiTable-style KB.
// ---------------------------------------------------------------------------

KnowledgeBase KnowledgeBase::BuildWikiTableKb(uint64_t seed) {
  util::Rng rng(seed);
  KnowledgeBase kb;

  const std::vector<std::string> people = BuildPersonPool(&rng, 300);
  const std::vector<std::string> cities = BuildCities(&rng, 80);

  // Person-like types draw heavily overlapping windows of the master pool
  // (~85% pairwise overlap for the film roles): the same surface form can
  // be a director, a producer, and an author, so the value distribution
  // alone barely separates the roles — only the facts stored during MLM
  // pre-training (which film ↔ which person in which role) can, and
  // reading them requires token-level cross-column attention. This is the
  // paper's central "George Miller" ambiguity, dialed up.
  const int person = kb.AddType({"people.person", {}, Window(people, 0, 300)});
  const int director = kb.AddType(
      {"film.director", {"people.person"}, Window(people, 0, 140)});
  const int producer = kb.AddType(
      {"film.producer", {"people.person"}, Window(people, 20, 140)});
  const int writer = kb.AddType(
      {"film.writer", {"people.person"}, Window(people, 40, 140)});
  const int artist = kb.AddType(
      {"music.artist", {"people.person"}, Window(people, 60, 140)});
  const int author = kb.AddType(
      {"book.author", {"people.person"}, Window(people, 80, 140)});
  const int politician = kb.AddType(
      {"government.politician", {"people.person"}, Window(people, 100, 140)});
  const int coach = kb.AddType(
      {"sports.coach", {"people.person"}, Window(people, 120, 140)});

  // Monarch surface forms are distinctive ("king arthur ii"); the probing
  // analysis expects royalty to behave differently from common types.
  std::vector<std::string> monarchs;
  for (int i = 0; i < 60; ++i) {
    monarchs.push_back(
        std::string(rng.Bernoulli(0.5) ? "king" : "queen") + " " +
        kFirstNames[rng.NextUint64(std::size(kFirstNames))] + " " +
        kRomanNumerals[rng.NextUint64(std::size(kRomanNumerals))]);
  }
  std::sort(monarchs.begin(), monarchs.end());
  monarchs.erase(std::unique(monarchs.begin(), monarchs.end()),
                 monarchs.end());
  const int monarch =
      kb.AddType({"royalty.monarch", {"people.person"}, monarchs});

  const int film =
      kb.AddType({"film.film", {}, BuildTitles(&rng, 200, " ")});
  const int album =
      kb.AddType({"music.album", {}, BuildTitles(&rng, 150, " ")});
  const int book =
      kb.AddType({"book.book", {}, BuildTitles(&rng, 150, " of the ")});
  const int program =
      kb.AddType({"tv.program", {}, BuildTitles(&rng, 100, " and the ")});

  const int city = kb.AddType({"location.city", {}, cities});
  const int country =
      kb.AddType({"location.country", {}, ToVector(kCountries)});
  const int team =
      kb.AddType({"sports.team", {}, BuildTeams(&rng, cities, 60)});
  const int film_genre =
      kb.AddType({"film.genre", {}, ToVector(kFilmGenres)});
  const int music_genre =
      kb.AddType({"music.genre", {}, ToVector(kMusicGenres)});
  const int year = kb.AddType({"time.year", {}, BuildYears(1950, 2020)});

  std::vector<std::string> universities;
  for (const std::string& c : Window(cities, 0, 60)) {
    universities.push_back("university of " + c);
  }
  const int university =
      kb.AddType({"education.university", {}, universities});

  std::vector<std::string> elections;
  for (int i = 0; i < 60; ++i) {
    elections.push_back(
        std::string(kCountries[rng.NextUint64(std::size(kCountries))]) +
        " election " + BuildYears(1960, 2020)[rng.NextUint64(61)]);
  }
  std::sort(elections.begin(), elections.end());
  elections.erase(std::unique(elections.begin(), elections.end()),
                  elections.end());
  const int election =
      kb.AddType({"government.election", {}, elections});

  std::vector<std::string> rivers;
  for (const char* name : kRivers) rivers.push_back(std::string(name) + " river");
  const int river = kb.AddType({"geography.river", {}, rivers});
  const int organism =
      kb.AddType({"biology.organism", {}, ToVector(kOrganisms)});
  const int constellation =
      kb.AddType({"astronomy.constellation", {}, ToVector(kConstellations)});

  // Relations: subject → object, with the corpus/probing phrase.
  const int directed_by = kb.AddRelation("film.directed_by", "is directed by",
                                         film, director, &rng);
  const int produced_by = kb.AddRelation("film.produced_by", "is produced by",
                                         film, producer, &rng);
  const int written_by = kb.AddRelation("film.written_by", "is written by",
                                        film, writer, &rng);
  const int film_country = kb.AddRelation("film.country", "was released in",
                                          film, country, &rng);
  const int film_genre_rel =
      kb.AddRelation("film.genre", "is a film of genre", film, film_genre,
                     &rng);
  const int film_year = kb.AddRelation("film.release_year", "premiered in",
                                       film, year, &rng);
  const int place_of_birth = kb.AddRelation(
      "person.place_of_birth", "was born in", person, city, &rng);
  const int place_lived =
      kb.AddRelation("person.place_lived", "lives in", person, city, &rng);
  const int nationality = kb.AddRelation("person.nationality", "is a citizen of",
                                         person, country, &rng);
  const int team_roster = kb.AddRelation("person.team_roster", "plays for",
                                         person, team, &rng);
  const int album_by =
      kb.AddRelation("music.album_by", "is an album by", album, artist, &rng);
  const int album_genre = kb.AddRelation("music.album_genre",
                                         "is an album of genre", album,
                                         music_genre, &rng);
  const int album_year = kb.AddRelation("music.album_year", "was recorded in",
                                        album, year, &rng);
  const int book_by = kb.AddRelation("book.written_by", "is a book by", book,
                                     author, &rng);
  const int book_year = kb.AddRelation("book.published_year",
                                       "was published in", book, year, &rng);
  const int book_country = kb.AddRelation(
      "book.country", "was first printed in", book, country, &rng);
  const int uni_city = kb.AddRelation("university.city", "is located in",
                                      university, city, &rng);
  const int uni_year = kb.AddRelation("university.founded", "was founded in",
                                      university, year, &rng);
  const int election_winner = kb.AddRelation(
      "election.winner", "was won by", election, politician, &rng);
  const int election_year = kb.AddRelation("election.year", "was held in",
                                           election, year, &rng);
  const int program_country = kb.AddRelation(
      "tv.program_country", "is broadcast in", program, country, &rng);
  const int program_genre =
      kb.AddRelation("tv.program_genre", "is a show of genre", program,
                     film_genre, &rng);
  const int monarch_country = kb.AddRelation(
      "royalty.reigned_in", "reigned in", monarch, country, &rng);
  const int monarch_year = kb.AddRelation("royalty.crowned", "was crowned in",
                                          monarch, year, &rng);
  const int team_coach = kb.AddRelation("sports.coached_by", "is coached by",
                                        team, coach, &rng);
  const int team_city =
      kb.AddRelation("sports.team_city", "is based in", team, city, &rng);
  const int river_country = kb.AddRelation(
      "geography.flows_through", "flows through", river, country, &rng);
  const int organism_country = kb.AddRelation(
      "biology.native_to", "is native to", organism, country, &rng);

  // Topics: the table templates. Weights shape class frequency.
  kb.topics_ = {
      {"films",
       film,
       {director, producer, writer, country, film_genre, year},
       {directed_by, produced_by, written_by, film_country, film_genre_rel,
        film_year},
       3.0},
      {"athletes",
       person,
       {city, team, country},
       {place_of_birth, team_roster, nationality},
       2.0},
      {"residents",
       person,
       {city, country},
       {place_lived, nationality},
       1.0},
      {"albums",
       album,
       {artist, music_genre, year},
       {album_by, album_genre, album_year},
       2.0},
      {"books",
       book,
       {author, year, country},
       {book_by, book_year, book_country},
       2.0},
      {"universities",
       university,
       {city, year},
       {uni_city, uni_year},
       1.0},
      {"elections",
       election,
       {politician, year},
       {election_winner, election_year},
       1.0},
      {"programs",
       program,
       {country, film_genre},
       {program_country, program_genre},
       1.0},
      {"royals",
       monarch,
       {country, year},
       {monarch_country, monarch_year},
       0.5},
      {"teams",
       team,
       {coach, city},
       {team_coach, team_city},
       1.0},
      {"rivers", river, {country}, {river_country}, 0.5},
      {"wildlife", organism, {country}, {organism_country}, 0.5},
      {"sky", constellation, {year}, {-1}, 0.3},
  };
  return kb;
}

// ---------------------------------------------------------------------------
// VizNet-style KB.
// ---------------------------------------------------------------------------

KnowledgeBase KnowledgeBase::BuildVizNetKb(uint64_t seed) {
  util::Rng rng(seed);
  KnowledgeBase kb;

  const std::vector<std::string> people = BuildPersonPool(&rng, 300);
  const std::vector<std::string> cities = BuildCities(&rng, 80);

  const int name = kb.AddType({"name", {}, Window(people, 0, 250)});
  const int creator = kb.AddType({"creator", {}, Window(people, 60, 150)});
  const int artist = kb.AddType({"artist", {}, Window(people, 130, 150)});
  const int gender = kb.AddType(
      {"gender", {}, {"male", "female", "m", "f", "man", "woman"}});
  const int nationality =
      kb.AddType({"nationality", {}, ToVector(kNationalities)});
  // birthPlace and city share the same pool on purpose: only table context
  // separates them (a hard pair in the paper's Figure 5 / probing).
  const int birth_place = kb.AddType({"birthPlace", {}, cities});
  const int city = kb.AddType({"city", {}, cities});

  std::vector<std::string> states;
  for (const std::string& c : Window(cities, 20, 40)) {
    states.push_back(c + " state");
  }
  const int state = kb.AddType({"state", {}, states});
  const int country = kb.AddType({"country", {}, ToVector(kCountries)});
  // origin shares the country pool (another context-only pair).
  const int origin = kb.AddType({"origin", {}, ToVector(kCountries)});

  std::vector<std::string> addresses;
  for (int i = 0; i < 150; ++i) {
    addresses.push_back(
        std::to_string(rng.UniformInt(1, 999)) + " " +
        cities[rng.NextUint64(cities.size())] + " " +
        kStreetSuffixes[rng.NextUint64(std::size(kStreetSuffixes))]);
  }
  const int address = kb.AddType({"address", {}, addresses});

  std::vector<std::string> companies;
  for (const char* word : kCompanyWords) {
    for (const char* suffix : kCompanySuffixes) {
      companies.push_back(std::string(word) + " " + suffix);
    }
  }
  rng.Shuffle(&companies);
  companies.resize(100);
  const int company = kb.AddType({"company", {}, companies});
  // manufacturer shares company surface forms.
  const int manufacturer = kb.AddType(
      {"manufacturer", {},
       std::vector<std::string>(companies.begin(), companies.begin() + 60)});

  std::vector<std::string> organisations;
  for (const char* word : kCompanyWords) {
    organisations.push_back(std::string(word) + " foundation");
    organisations.push_back(std::string(word) + " society");
  }
  const int organisation = kb.AddType({"organisation", {}, organisations});

  std::vector<std::string> affiliations;
  for (const std::string& c : Window(cities, 0, 40)) {
    affiliations.push_back("university of " + c);
  }
  const int affiliation = kb.AddType({"affiliation", {}, affiliations});
  const int education = kb.AddType({"education", {}, ToVector(kDegrees)});

  const int team =
      kb.AddType({"team", {}, BuildTeams(&rng, cities, 60)});
  const int language = kb.AddType({"language", {}, ToVector(kLanguages)});
  const int religion = kb.AddType({"religion", {}, ToVector(kReligions)});
  const int status = kb.AddType({"status", {}, ToVector(kStatuses)});
  const int day = kb.AddType({"day", {}, ToVector(kDays)});
  const int klass = kb.AddType({"class", {}, ToVector(kClasses)});
  const int position = kb.AddType({"position", {}, ToVector(kPositions)});
  const int family = kb.AddType(
      {"family", {},
       std::vector<std::string>(kLastNames, kLastNames + 40)});

  std::vector<std::string> products;
  for (const char* adj : kTitleAdjectives) {
    for (const char* noun : kProductNouns) {
      products.push_back(std::string(adj) + " " + noun);
    }
  }
  rng.Shuffle(&products);
  products.resize(120);
  const int product = kb.AddType({"product", {}, products});

  std::vector<std::string> descriptions;
  for (int i = 0; i < 150; ++i) {
    descriptions.push_back(
        std::string(
            kDescriptionWords[rng.NextUint64(std::size(kDescriptionWords))]) +
        " " + kProductNouns[rng.NextUint64(std::size(kProductNouns))] + " " +
        kDescriptionWords[rng.NextUint64(std::size(kDescriptionWords))]);
  }
  const int description = kb.AddType({"description", {}, descriptions});

  std::vector<std::string> durations;
  for (int i = 0; i < 100; ++i) {
    switch (rng.NextUint64(3)) {
      case 0:
        durations.push_back(std::to_string(rng.UniformInt(1, 12)) + "h " +
                            std::to_string(rng.UniformInt(0, 59)) + "m");
        break;
      case 1:
        durations.push_back(std::to_string(rng.UniformInt(5, 180)) + " min");
        break;
      default:
        durations.push_back("0" + std::to_string(rng.UniformInt(1, 9)) + ":" +
                            std::to_string(rng.UniformInt(10, 59)) + ":00");
    }
  }
  const int duration = kb.AddType({"duration", {}, durations});

  std::vector<std::string> birth_dates;
  for (int i = 0; i < 150; ++i) {
    const int64_t y = rng.UniformInt(1930, 2010);
    const int64_t m = rng.UniformInt(1, 12);
    const int64_t d = rng.UniformInt(1, 28);
    if (rng.Bernoulli(0.68)) {
      birth_dates.push_back(std::to_string(y) + "-" +
                            (m < 10 ? "0" : "") + std::to_string(m) + "-" +
                            (d < 10 ? "0" : "") + std::to_string(d));
    } else {
      static const char* kMonths[] = {"jan", "feb", "mar", "apr",
                                      "may", "jun", "jul", "aug",
                                      "sep", "oct", "nov", "dec"};
      birth_dates.push_back(std::to_string(d) + " " + kMonths[m - 1] + " " +
                            std::to_string(y));
    }
  }
  const int birth_date = kb.AddType({"birthDate", {}, birth_dates});

  // Numeric types. Pool mixtures are tuned so the %num column of the
  // paper's Table 5 is qualitatively reproduced (plays ≈ 100% numeric, code
  // ≈ 36%, etc.).
  std::vector<std::string> plays;
  for (int i = 0; i < 150; ++i) {
    plays.push_back(std::to_string(rng.UniformInt(0, 1000000)));
  }
  const int plays_type = kb.AddType({"plays", {}, plays});

  const int rank =
      kb.AddType({"rank", {}, BuildNumericPool(&rng, 100, 1, 100)});
  // ranking duplicates rank's distribution — the paper's hardest numeric
  // type (F1 33.2) precisely because it collides with the frequent "rank".
  const int ranking =
      kb.AddType({"ranking", {}, BuildNumericPool(&rng, 100, 1, 100)});

  std::vector<std::string> depths;
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.UniformInt(5, 4000);
    depths.push_back(rng.Bernoulli(0.92) ? std::to_string(v)
                                         : std::to_string(v) + " m");
  }
  const int depth = kb.AddType({"depth", {}, depths});

  std::vector<std::string> sales;
  for (int i = 0; i < 120; ++i) {
    const int64_t v = rng.UniformInt(1000, 9000000);
    sales.push_back(rng.Bernoulli(0.9) ? WithThousandsSeparators(v)
                                       : "$" + WithThousandsSeparators(v));
  }
  const int sales_type = kb.AddType({"sales", {}, sales});

  const int year = kb.AddType({"year", {}, BuildYears(1900, 2023)});

  std::vector<std::string> file_sizes;
  for (int i = 0; i < 100; ++i) {
    if (rng.Bernoulli(0.85)) {
      file_sizes.push_back(std::to_string(rng.UniformInt(100, 900000)));
    } else {
      file_sizes.push_back(util::FormatDouble(rng.UniformDouble(0.5, 900), 1) +
                           " mb");
    }
  }
  const int file_size = kb.AddType({"fileSize", {}, file_sizes});

  std::vector<std::string> elevations;
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.UniformInt(10, 8000);
    elevations.push_back(rng.Bernoulli(0.87) ? std::to_string(v)
                                             : std::to_string(v) + " ft");
  }
  const int elevation = kb.AddType({"elevation", {}, elevations});

  std::vector<std::string> ages;
  for (int i = 0; i < 99; ++i) {
    const int64_t v = rng.UniformInt(1, 99);
    ages.push_back(rng.Bernoulli(0.8) ? std::to_string(v)
                                      : std::to_string(v) + " years");
  }
  const int age = kb.AddType({"age", {}, ages});

  std::vector<std::string> grades;
  for (int i = 0; i < 60; ++i) {
    switch (rng.NextUint64(3)) {
      case 0:
        grades.push_back(std::to_string(rng.UniformInt(1, 8)) + "-" +
                         std::to_string(rng.UniformInt(9, 12)));
        break;
      case 1:
        grades.push_back("k-" + std::to_string(rng.UniformInt(5, 8)));
        break;
      default:
        grades.push_back(std::to_string(rng.UniformInt(1, 12)));
    }
  }
  const int grades_type = kb.AddType({"grades", {}, grades});

  std::vector<std::string> weights;
  for (int i = 0; i < 90; ++i) {
    const int64_t v = rng.UniformInt(40, 140);
    weights.push_back(rng.Bernoulli(0.6) ? std::to_string(v)
                                         : std::to_string(v) + " kg");
  }
  const int weight = kb.AddType({"weight", {}, weights});

  std::vector<std::string> isbns;
  for (int i = 0; i < 120; ++i) {
    std::string digits;
    for (int d = 0; d < 10; ++d) {
      digits += std::to_string(rng.UniformInt(0, 9));
    }
    isbns.push_back(rng.Bernoulli(0.56) ? "978-" + digits : digits);
  }
  const int isbn = kb.AddType({"isbn", {}, isbns});

  std::vector<std::string> capacities;
  for (int i = 0; i < 90; ++i) {
    const int64_t v = rng.UniformInt(500, 110000);
    capacities.push_back(rng.Bernoulli(0.42)
                             ? WithThousandsSeparators(v)
                             : WithThousandsSeparators(v) + " seats");
  }
  const int capacity = kb.AddType({"capacity", {}, capacities});

  std::vector<std::string> codes;
  for (int i = 0; i < 120; ++i) {
    if (rng.Bernoulli(0.36)) {
      codes.push_back(std::to_string(rng.UniformInt(100, 9999)));
    } else {
      std::string code(1, static_cast<char>('a' + rng.UniformInt(0, 25)));
      code += std::to_string(rng.UniformInt(10, 999));
      codes.push_back(code);
    }
  }
  const int code = kb.AddType({"code", {}, codes});

  // Topics (no relations): columns are drawn independently from the pools.
  // Low-weight topics carry the rare classes (religion, education,
  // organisation, ranking) that the Figure 5 analysis depends on.
  kb.topics_ = {
      {"people", -1,
       {name, age, gender, birth_date, birth_place, nationality}, {}, 3.0},
      {"places", -1, {city, state, country, elevation, capacity}, {}, 2.0},
      {"products", -1, {product, manufacturer, sales_type, code, status}, {}, 2.0},
      {"library", -1, {isbn, year, language, creator}, {}, 1.5},
      {"roster", -1, {name, team, position, weight, age}, {}, 2.0},
      {"geo", -1, {city, country, depth, elevation, origin}, {}, 1.0},
      {"files", -1, {file_size, code, day, duration, description}, {}, 1.0},
      {"music", -1, {artist, year, plays_type, klass}, {}, 1.0},
      {"travel", -1, {address, city, duration, status, day}, {}, 1.0},
      {"games", -1, {plays_type, ranking, rank, year}, {}, 0.6},
      {"companies", -1, {company, country, sales_type, year}, {}, 1.0},
      {"rankings", -1, {name, rank, plays_type, team}, {}, 1.5},
      {"schools", -1, {affiliation, grades_type, rank, city}, {}, 0.8},
      {"census", -1, {name, religion, family, origin, education}, {}, 0.35},
      {"charity", -1, {organisation, country, year, status}, {}, 0.3},
  };
  return kb;
}

}  // namespace doduo::synth
