#include "doduo/synth/case_study.h"

#include "doduo/util/check.h"
#include "doduo/util/rng.h"
#include "doduo/util/string_util.h"

namespace doduo::synth {

namespace {

// Semantic groups with their column-name variants. Different tables use
// different variants for the same group — the core difficulty of the case
// study.
struct Group {
  const char* name;
  std::vector<const char*> column_names;
};

const Group kGroups[] = {
    {"date", {"date", "dt", "event_date", "day"}},
    {"ip_address", {"ip", "ip_address", "client_ip", "remote_addr"}},
    {"job_title", {"job_title", "title", "position", "role"}},
    {"timestamp_unix", {"ts", "unixtime", "created_ts", "epoch"}},
    {"timestamp_hhmm", {"time", "hhmm", "clock_time", "time_of_day"}},
    {"counts", {"count", "num_events", "total", "n"}},
    {"status", {"status", "state", "flag", "stage"}},
    {"file_path", {"path", "file_path", "location_on_disk", "uri"}},
    {"browser", {"browser", "user_agent", "client", "ua"}},
    {"location", {"location", "city", "place", "geo"}},
    {"search_term", {"search_term", "query", "keyword", "q"}},
    {"rating", {"rating", "score", "stars", "grade"}},
    {"company_id", {"company_id", "cid", "employer_id", "org_id"}},
    {"review_id", {"review_id", "rid", "feedback_id", "post_id"}},
    {"user_id", {"user_id", "uid", "member_id", "account_id"}},
};

constexpr int kNumGroups = static_cast<int>(std::size(kGroups));

// Columns of the 10 tables (group indices). 50 columns total; every group
// appears at least twice so clustering has something to join.
const std::vector<std::vector<int>> kTableLayouts = {
    {0, 14, 10, 1, 8},     // jobsearch events: date, user, query, ip, browser
    {3, 14, 10, 5, 6},     // jobsearch counts: ts, user, query, counts, status
    {13, 12, 11, 6, 0},    // reviews: review, company, rating, status, date
    {13, 14, 11, 4, 0},    // review details: review, user, rating, hh:mm, date
    {12, 2, 9, 6, 3},      // companies: company, job title, location, status, ts
    {14, 2, 9, 0, 5},      // users: user, job title, location, date, counts
    {7, 3, 5, 6, 8},       // logs: path, ts, counts, status, browser
    {1, 8, 4, 7, 5},       // sessions: ip, browser, hh:mm, path, counts
    {12, 11, 5, 0, 9},     // company stats: company, rating, counts, date, loc
    {14, 13, 3, 1, 10},    // activity: user, review, ts, ip, query
};

std::string GenerateValue(int group, util::Rng* rng) {
  switch (group) {
    case 0: {  // date
      return std::to_string(rng->UniformInt(2015, 2023)) + "-" +
             std::to_string(rng->UniformInt(1, 12)) + "-" +
             std::to_string(rng->UniformInt(1, 28));
    }
    case 1: {  // ip address
      return std::to_string(rng->UniformInt(1, 255)) + "." +
             std::to_string(rng->UniformInt(0, 255)) + "." +
             std::to_string(rng->UniformInt(0, 255)) + "." +
             std::to_string(rng->UniformInt(1, 254));
    }
    case 2: {  // job title
      static const char* kTitles[] = {
          "software engineer", "data scientist", "product manager",
          "sales associate",   "nurse",          "accountant",
          "designer",          "technician",     "analyst",
          "recruiter"};
      return kTitles[rng->NextUint64(std::size(kTitles))];
    }
    case 3:  // unix timestamp
      return std::to_string(rng->UniformInt(1500000000, 1700000000));
    case 4: {  // hh:mm
      const int64_t h = rng->UniformInt(0, 23);
      const int64_t m = rng->UniformInt(0, 59);
      return (h < 10 ? "0" : "") + std::to_string(h) + ":" +
             (m < 10 ? "0" : "") + std::to_string(m);
    }
    case 5:  // counts
      return std::to_string(rng->UniformInt(0, 5000));
    case 6: {  // status
      static const char* kStatuses[] = {"active", "pending", "closed",
                                        "approved", "rejected", "draft"};
      return kStatuses[rng->NextUint64(std::size(kStatuses))];
    }
    case 7: {  // file path
      static const char* kDirs[] = {"var", "home", "data", "srv", "tmp"};
      static const char* kFiles[] = {"log", "report", "export", "cache",
                                     "index"};
      return std::string("/") + kDirs[rng->NextUint64(std::size(kDirs))] +
             "/" + kFiles[rng->NextUint64(std::size(kFiles))] + "_" +
             std::to_string(rng->UniformInt(1, 99)) + ".txt";
    }
    case 8: {  // browser
      static const char* kBrowsers[] = {"chrome", "firefox", "safari",
                                        "edge",   "opera",   "brave"};
      return kBrowsers[rng->NextUint64(std::size(kBrowsers))];
    }
    case 9: {  // location
      static const char* kPlaces[] = {"oakfield",  "brookton", "mapleview",
                                      "stoneport", "fairdale", "riverhaven",
                                      "eastburg",  "westford"};
      return kPlaces[rng->NextUint64(std::size(kPlaces))];
    }
    case 10: {  // search term
      static const char* kTerms[] = {
          "remote jobs",     "salary report",  "software engineer",
          "part time work",  "company reviews", "internships",
          "hiring manager",  "career change"};
      return kTerms[rng->NextUint64(std::size(kTerms))];
    }
    case 11:  // rating
      return util::FormatDouble(rng->UniformDouble(1.0, 5.0), 1);
    case 12:  // company id
      return "c" + std::to_string(rng->UniformInt(1000, 9999));
    case 13:  // review id
      return "r" + std::to_string(rng->UniformInt(100000, 999999));
    case 14:  // user id
      return "u" + std::to_string(rng->UniformInt(10000, 99999));
    default:
      DODUO_CHECK(false) << "unknown group " << group;
      return "";
  }
}

}  // namespace

CaseStudyData BuildCaseStudy(uint64_t seed) {
  util::Rng rng(seed);
  CaseStudyData data;
  for (const Group& group : kGroups) data.group_names.push_back(group.name);

  for (size_t t = 0; t < kTableLayouts.size(); ++t) {
    table::Table tbl("case_study_" + std::to_string(t));
    for (int group : kTableLayouts[t]) {
      DODUO_CHECK(group >= 0 && group < kNumGroups);
      table::Column column;
      // Pick a name variant; different tables disagree on naming.
      const auto& variants = kGroups[group].column_names;
      column.name = variants[rng.NextUint64(variants.size())];
      const int rows = static_cast<int>(rng.UniformInt(6, 10));
      for (int r = 0; r < rows; ++r) {
        column.values.push_back(GenerateValue(group, &rng));
      }
      tbl.AddColumn(std::move(column));
      data.ground_truth.push_back(group);
    }
    data.tables.push_back(std::move(tbl));
  }
  DODUO_CHECK_EQ(data.num_columns(), 50);
  return data;
}

}  // namespace doduo::synth
