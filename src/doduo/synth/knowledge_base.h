#ifndef DODUO_SYNTH_KNOWLEDGE_BASE_H_
#define DODUO_SYNTH_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "doduo/util/rng.h"

namespace doduo::synth {

/// A semantic column type with its pool of entity surface forms.
///
/// The shared-pool construction is the key realism knob of the benchmark:
/// person-like types (director, producer, writer, ...) draw their entities
/// from overlapping windows of one master name pool, so a value alone does
/// not determine its type — exactly the "George Miller problem" that
/// motivates table-context models in the paper.
struct EntityType {
  std::string name;                       // e.g. "film.director"
  std::vector<std::string> extra_labels;  // secondary labels, e.g.
                                          // "people.person" (multi-label)
  std::vector<std::string> entities;      // surface forms
  double topic_weight = 1.0;              // rarity knob (Figure 5)
};

/// A binary relation between two entity types, with the natural-language
/// phrase used in the pre-training corpus and the probing templates.
struct RelationType {
  std::string name;    // e.g. "film.directed_by"
  std::string phrase;  // e.g. "is directed by"
  int subject_type = -1;
  int object_type = -1;
};

/// A table template: the key column's type plus candidate non-key columns
/// and (for relational topics) the relation linking the key column to each.
struct Topic {
  std::string name;
  int key_type = -1;               // -1: no key column (independent columns)
  std::vector<int> other_types;    // candidate non-key column types
  std::vector<int> relations;      // relation id per other_types entry, or -1
  double weight = 1.0;             // topic sampling weight
};

/// The synthetic knowledge base behind both benchmarks and the MLM
/// pre-training corpus. Substitutes for FreeBase/DBpedia + Wikipedia (see
/// DESIGN.md): the same facts that define the tables' ground truth are
/// verbalized into the corpus the LM is pre-trained on, reproducing the
/// paper's "pre-trained LMs store factual knowledge" mechanism.
class KnowledgeBase {
 public:
  /// WikiTable-style KB: 24 multi-label types, 16 relations, relational
  /// topics (films, athletes, books, elections, ...).
  static KnowledgeBase BuildWikiTableKb(uint64_t seed);

  /// VizNet-style KB: 36 single-label types including the 15 most-numeric
  /// types of the paper's Table 5, topics without relations, rare classes.
  static KnowledgeBase BuildVizNetKb(uint64_t seed);

  int num_types() const { return static_cast<int>(types_.size()); }
  const EntityType& type(int id) const;
  /// Id for a type name; -1 when absent.
  int TypeId(const std::string& name) const;

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const RelationType& relation(int id) const;
  int RelationId(const std::string& name) const;

  const std::vector<Topic>& topics() const { return topics_; }

  /// Object entity index of (relation, subject entity index); every subject
  /// of a relation's subject type has exactly one object.
  int FactObject(int relation_id, int subject_index) const;

  /// Leaf word of a dotted type name ("film.director" → "director"),
  /// used by corpus sentences and probing templates.
  static std::string LeafWord(const std::string& type_name);

 private:
  int AddType(EntityType type);
  int AddRelation(const std::string& name, const std::string& phrase,
                  int subject_type, int object_type, util::Rng* rng);

  std::vector<EntityType> types_;
  std::vector<RelationType> relations_;
  std::vector<Topic> topics_;
  std::unordered_map<std::string, int> type_ids_;
  std::unordered_map<std::string, int> relation_ids_;
  // facts_[relation][subject_index] = object_index.
  std::vector<std::vector<int>> facts_;
};

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_KNOWLEDGE_BASE_H_
