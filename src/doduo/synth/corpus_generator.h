#ifndef DODUO_SYNTH_CORPUS_GENERATOR_H_
#define DODUO_SYNTH_CORPUS_GENERATOR_H_

#include <string>
#include <vector>

#include "doduo/synth/knowledge_base.h"

namespace doduo::synth {

/// Knobs of the pre-training corpus.
struct CorpusOptions {
  /// Sentences emitted per relation fact ("<subject> <phrase> <object> .").
  int fact_mentions = 2;
  /// Sentences emitted per (entity, type) pair ("<entity> is <leaf> .").
  int type_mentions = 1;
  /// List statements emitted per type ("<e1> <e2> <e3> are <leaf> ."),
  /// teaching the LM to map value sequences to a type — the shape a
  /// serialized column presents at fine-tuning time.
  int list_mentions = 40;
  uint64_t seed = 42;
};

/// Verbalizes the knowledge base into a plain-text corpus for MLM
/// pre-training. This substitutes for BERT's Wikipedia corpus: the facts
/// that the annotation tasks depend on ("happy feet is directed by george
/// miller") are stored in the LM's weights during pre-training, which the
/// probing experiment (Tables 12/13) then measures directly.
class CorpusGenerator {
 public:
  /// `kb` must outlive the generator.
  explicit CorpusGenerator(const KnowledgeBase* kb);

  std::vector<std::string> Generate(const CorpusOptions& options) const;

  /// The type statement used both in the corpus and as the probing
  /// template: "<entity> is <leaf-word-of-type> .".
  static std::string TypeStatement(const std::string& entity,
                                   const std::string& type_name);

  /// The relation statement: "<subject> <phrase> <object> .".
  static std::string RelationStatement(const std::string& subject,
                                       const std::string& phrase,
                                       const std::string& object);

 private:
  const KnowledgeBase* kb_;
};

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_CORPUS_GENERATOR_H_
