#include "doduo/synth/table_generator.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::synth {

TableGenerator::TableGenerator(const KnowledgeBase* kb,
                               TableGeneratorOptions options)
    : kb_(kb), options_(std::move(options)) {
  DODUO_CHECK(kb != nullptr);
  DODUO_CHECK_GT(options_.num_tables, 0);
  DODUO_CHECK(options_.min_rows > 0 && options_.min_rows <= options_.max_rows);
  DODUO_CHECK(options_.min_cols > 0 && options_.min_cols <= options_.max_cols);
  DODUO_CHECK(!kb->topics().empty());
}

std::string TableGenerator::ColumnName(int type_id, util::Rng* rng) const {
  const std::string leaf = KnowledgeBase::LeafWord(kb_->type(type_id).name);
  switch (rng->NextUint64(4)) {
    case 0:
      return leaf;
    case 1:
      return leaf + " name";
    case 2:
      return leaf.size() > 4 ? leaf.substr(0, 4) : leaf;
    default:
      return "the " + leaf;
  }
}

table::ColumnAnnotationDataset TableGenerator::Generate(
    util::Rng* rng) const {
  table::ColumnAnnotationDataset dataset;
  dataset.name = options_.dataset_name;
  dataset.multi_label = options_.multi_label;

  // Register every label up front so ids are stable regardless of which
  // tables happen to be generated.
  for (int t = 0; t < kb_->num_types(); ++t) {
    dataset.type_vocab.AddLabel(kb_->type(t).name);
    if (options_.multi_label) {
      for (const std::string& extra : kb_->type(t).extra_labels) {
        dataset.type_vocab.AddLabel(extra);
      }
    }
  }
  if (options_.with_relations) {
    for (int r = 0; r < kb_->num_relations(); ++r) {
      dataset.relation_vocab.AddLabel(kb_->relation(r).name);
    }
  }

  std::vector<double> topic_weights;
  topic_weights.reserve(kb_->topics().size());
  for (const Topic& topic : kb_->topics()) {
    topic_weights.push_back(topic.weight);
  }

  dataset.tables.reserve(static_cast<size_t>(options_.num_tables));
  for (int i = 0; i < options_.num_tables; ++i) {
    const Topic& topic = kb_->topics()[rng->Categorical(topic_weights)];
    GenerateTable(topic, i, rng, &dataset);
  }
  return dataset;
}

void TableGenerator::GenerateTable(
    const Topic& topic, int table_index, util::Rng* rng,
    table::ColumnAnnotationDataset* dataset) const {
  const int rows =
      static_cast<int>(rng->UniformInt(options_.min_rows, options_.max_rows));

  table::AnnotatedTable annotated;
  annotated.table.set_id(options_.dataset_name + "_" +
                         std::to_string(table_index));

  auto type_labels = [&](int type_id) {
    std::vector<int> labels = {
        dataset->type_vocab.Id(kb_->type(type_id).name)};
    if (options_.multi_label) {
      for (const std::string& extra : kb_->type(type_id).extra_labels) {
        labels.push_back(dataset->type_vocab.Id(extra));
      }
    }
    return labels;
  };

  auto maybe_drop = [&](std::string value) {
    if (options_.cell_missing_prob > 0.0 &&
        rng->Bernoulli(options_.cell_missing_prob)) {
      return std::string();
    }
    return value;
  };

  const bool single_column =
      options_.single_column_fraction > 0.0 &&
      rng->Bernoulli(options_.single_column_fraction);

  // Candidate non-key columns of this topic (relation id or -1 each).
  struct Candidate {
    int type_id;
    int relation_id;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < topic.other_types.size(); ++i) {
    const int relation_id =
        i < topic.relations.size() ? topic.relations[i] : -1;
    candidates.push_back({topic.other_types[i], relation_id});
  }

  if (single_column) {
    // One column of one type drawn from the topic (key or non-key).
    int type_id;
    const size_t pick = rng->NextUint64(candidates.size() +
                                        (topic.key_type >= 0 ? 1 : 0));
    if (topic.key_type >= 0 && pick == candidates.size()) {
      type_id = topic.key_type;
    } else {
      type_id = candidates[pick].type_id;
    }
    const auto& pool = kb_->type(type_id).entities;
    table::Column column;
    column.name = ColumnName(type_id, rng);
    for (int r = 0; r < rows; ++r) {
      column.values.push_back(
          maybe_drop(pool[rng->NextUint64(pool.size())]));
    }
    annotated.table.AddColumn(std::move(column));
    annotated.column_types.push_back(type_labels(type_id));
    dataset->tables.push_back(std::move(annotated));
    return;
  }

  const int max_other = static_cast<int>(candidates.size());
  const bool has_key = topic.key_type >= 0;
  const int min_total = std::min(options_.min_cols, max_other + (has_key ? 1 : 0));
  const int max_total = std::min(options_.max_cols, max_other + (has_key ? 1 : 0));
  const int total_cols =
      static_cast<int>(rng->UniformInt(min_total, max_total));
  const int other_cols = std::max(1, total_cols - (has_key ? 1 : 0));

  std::vector<size_t> picked =
      rng->SampleIndices(candidates.size(),
                         std::min<size_t>(static_cast<size_t>(other_cols),
                                          candidates.size()));

  if (has_key) {
    // Relational topic: anchor rows on distinct subject entities.
    const auto& subjects = kb_->type(topic.key_type).entities;
    std::vector<size_t> subject_rows = rng->SampleIndices(
        subjects.size(),
        std::min<size_t>(static_cast<size_t>(rows), subjects.size()));

    table::Column key_column;
    key_column.name = ColumnName(topic.key_type, rng);
    for (size_t s : subject_rows) {
      key_column.values.push_back(maybe_drop(subjects[s]));
    }
    annotated.table.AddColumn(std::move(key_column));
    annotated.column_types.push_back(type_labels(topic.key_type));

    for (size_t pick : picked) {
      const Candidate& candidate = candidates[pick];
      const auto& pool = kb_->type(candidate.type_id).entities;
      table::Column column;
      column.name = ColumnName(candidate.type_id, rng);
      for (size_t s : subject_rows) {
        std::string value;
        if (candidate.relation_id >= 0) {
          const int object =
              kb_->FactObject(candidate.relation_id, static_cast<int>(s));
          value = kb_->type(kb_->relation(candidate.relation_id).object_type)
                      .entities[static_cast<size_t>(object)];
        } else {
          value = pool[rng->NextUint64(pool.size())];
        }
        column.values.push_back(maybe_drop(std::move(value)));
      }
      const int column_index = annotated.table.num_columns();
      annotated.table.AddColumn(std::move(column));
      annotated.column_types.push_back(type_labels(candidate.type_id));
      if (options_.with_relations && candidate.relation_id >= 0) {
        const int label = dataset->relation_vocab.Id(
            kb_->relation(candidate.relation_id).name);
        annotated.relations.push_back({0, column_index, {label}});
      }
    }
  } else {
    // Independent-column topic (VizNet style): each cell drawn from its
    // type's pool.
    for (size_t pick : picked) {
      const Candidate& candidate = candidates[pick];
      const auto& pool = kb_->type(candidate.type_id).entities;
      table::Column column;
      column.name = ColumnName(candidate.type_id, rng);
      for (int r = 0; r < rows; ++r) {
        column.values.push_back(
            maybe_drop(pool[rng->NextUint64(pool.size())]));
      }
      annotated.table.AddColumn(std::move(column));
      annotated.column_types.push_back(type_labels(candidate.type_id));
    }
  }

  // Off-topic distractor column (independent draws, no relation).
  if (options_.distractor_prob > 0.0 &&
      rng->Bernoulli(options_.distractor_prob)) {
    // `used` tracks KB type ids; primary labels were registered from KB
    // names, so translate via the vocab.
    std::vector<bool> used(static_cast<size_t>(kb_->num_types()), false);
    for (const auto& labels : annotated.column_types) {
      const int kb_type =
          kb_->TypeId(dataset->type_vocab.Name(labels[0]));
      if (kb_type >= 0) used[static_cast<size_t>(kb_type)] = true;
    }
    int type_id = static_cast<int>(rng->NextUint64(kb_->num_types()));
    for (int attempts = 0;
         used[static_cast<size_t>(type_id)] && attempts < 8; ++attempts) {
      type_id = static_cast<int>(rng->NextUint64(kb_->num_types()));
    }
    const auto& pool = kb_->type(type_id).entities;
    table::Column column;
    column.name = ColumnName(type_id, rng);
    const int drows = annotated.table.num_rows();
    for (int r = 0; r < drows; ++r) {
      column.values.push_back(
          maybe_drop(pool[rng->NextUint64(pool.size())]));
    }
    annotated.table.AddColumn(std::move(column));
    annotated.column_types.push_back(type_labels(type_id));
  }
  dataset->tables.push_back(std::move(annotated));
}

}  // namespace doduo::synth
