#ifndef DODUO_SYNTH_TABLE_GENERATOR_H_
#define DODUO_SYNTH_TABLE_GENERATOR_H_

#include <string>

#include "doduo/synth/knowledge_base.h"
#include "doduo/table/dataset.h"

namespace doduo::synth {

/// Knobs of the benchmark generator.
struct TableGeneratorOptions {
  std::string dataset_name = "synthetic";
  int num_tables = 400;
  int min_rows = 3;
  int max_rows = 6;
  int min_cols = 2;  // including the key column
  int max_cols = 5;
  /// Fraction of tables that contain exactly one column (the VizNet "Full"
  /// population includes single-column tables; "Multi-column only" sets
  /// this to 0).
  double single_column_fraction = 0.0;
  /// Probability that a cell is dropped (simulates missing values).
  double cell_missing_prob = 0.0;
  /// Probability that a multi-column table gains one extra column of a
  /// uniformly random type from outside its topic. Real web tables mix
  /// concerns; this keeps topic-signature models (LDA/CRF) from acting as
  /// oracles on the synthetic benchmark.
  double distractor_prob = 0.0;
  /// WikiTable-style multi-label (secondary labels + BCE) vs VizNet-style
  /// single-label.
  bool multi_label = true;
  /// Emit relation annotations between the key column and related columns
  /// (requires a KB with relations).
  bool with_relations = true;
};

/// Samples annotated tables from a KnowledgeBase. Every cell of a
/// relational topic is consistent with the KB's facts, so the same facts
/// the LM saw during MLM pre-training discriminate the ambiguous columns —
/// the mechanism the paper attributes DODUO's gains to.
class TableGenerator {
 public:
  /// `kb` must outlive the generator.
  TableGenerator(const KnowledgeBase* kb, TableGeneratorOptions options);

  /// Generates the full labeled dataset. Label vocabularies are registered
  /// from the KB up front, so ids are stable across generated datasets of
  /// the same KB.
  table::ColumnAnnotationDataset Generate(util::Rng* rng) const;

  const TableGeneratorOptions& options() const { return options_; }

 private:
  /// Generates one annotated table from `topic` into `dataset`.
  void GenerateTable(const Topic& topic, int table_index, util::Rng* rng,
                     table::ColumnAnnotationDataset* dataset) const;

  /// A header string for a column of `type_id` (used only by the
  /// +metadata variants): the type's leaf word, occasionally abbreviated
  /// or suffixed so headers are informative but not trivially the label.
  std::string ColumnName(int type_id, util::Rng* rng) const;

  const KnowledgeBase* kb_;
  TableGeneratorOptions options_;
};

}  // namespace doduo::synth

#endif  // DODUO_SYNTH_TABLE_GENERATOR_H_
