#!/usr/bin/env bash
# Full pre-merge check: tier-1 tests (Release) plus the thread-safety
# analysis build and the AddressSanitizer and ThreadSanitizer configurations.
#
#   tools/check.sh            # lint + tier-1 + -Werror + thread-safety
#                             #   + ASan + TSan + UBSan
#   tools/check.sh --fast     # lint + tier-1 only
#
# The thread-safety stage compiles the tree with Clang's -Wthread-safety as
# errors (DESIGN §13): every DODUO_GUARDED_BY field access and
# REQUIRES/ACQUIRE/RELEASE contract is checked statically. It needs clang++
# and is skipped with a notice when none is on PATH (the annotations are
# no-ops elsewhere, so nothing regresses silently between environments with
# and without Clang — CI always has one).
#
# ASan covers the strided-view kernels and workspace arena reuse (out-of-
# bounds writes through MutMatView would corrupt neighbouring column bands
# silently) plus serve (protocol frame decoding touches raw byte buffers);
# TSan covers the thread-pool sharded kernels. UBSan covers the
# parsing/validation paths (env parsing, CSV, checkpoint decoding, tokenizer
# bounds) where integer overflow or bad shifts would otherwise pass
# silently. The ASan/TSan runs restrict themselves to the suites where the
# kernel, threading, and serving code lives: nn, transformer, and serve
# (the dynamic batcher and server are the most concurrency-dense code in
# the tree — DESIGN §12 requires the loopback stress suite to be clean
# under both). UBSan runs the tier-1 suite; the Release tier-1 runs
# everything.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
sanitizer_filter='nn_test|transformer_test|serve_test'

echo "=== doduo_lint (project invariants, whole-program) ==="
# The linter is cheap and catches discarded Status values, stray abort/rand
# calls, raw std::mutex use, detached threads, and include hygiene before
# any compile finishes, so it runs first and is never skipped — not even
# under --fast (DESIGN §11). --all adds the cross-file passes (DESIGN §16):
# layering DAG, include cycles, serve-frame symmetry, metrics registry,
# and the hot-path allocation audit. The JSON report (SARIF-lite) lands in
# build/lint_report.json for CI annotation; the human-readable run gates.
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}" --target doduo_lint
./build/tools/doduo_lint --all --format=json . > build/lint_report.json \
  || true  # keep the report even when dirty; the gating run is next
./build/tools/doduo_lint --all .

echo "=== tier-1 (Release) ==="
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "=== skipped quant gate + -Werror + thread-safety + sanitizer configs (--fast) ==="
  exit 0
fi

echo "=== quantized path (int8 GEMM + v2 checkpoints, DESIGN §14) ==="
# Focused re-run of the quantization contracts — kernel bit-equality across
# ISAs, the v2 loader fuzz suites, replica weight sharing, the lint rule,
# and the Table 3/4 F1 parity locks — then the throughput gate: int8 GEMM
# must beat the fp32 scalar reference by >= 1.5x. (The v2 fuzz suites also
# run under ASan/UBSan below via nn_test in ${sanitizer_filter}.)
ctest --test-dir build --output-on-failure -j "${jobs}" \
  -R 'Quant|SerializeV2|ReplicaSharing'
cmake --build build -j "${jobs}" --target bench_kernels
DODUO_BENCH_QUANT=1 DODUO_BENCH_QUANT_JSON=build/BENCH_quant.json \
  ./build/bench/bench_kernels --benchmark_filter='BM_Int8Gemm/64/1$' \
  2> build/quant_bench.log >/dev/null || { cat build/quant_bench.log; exit 1; }
speedup="$(awk -F'= ' '/int8\/fp32-scalar speedup/ {print $2}' \
  build/quant_bench.log)"
awk -v s="${speedup:-0}" 'BEGIN { exit (s + 0 >= 1.5) ? 0 : 1 }' || {
  echo "FAIL: int8 GEMM speedup ${speedup:-unknown}x < 1.5x over fp32 scalar"
  exit 1
}
echo "int8 GEMM speedup ${speedup}x over fp32 scalar (gate: >= 1.5x);" \
  "scorecard in build/BENCH_quant.json"

echo "=== warning wall (-Werror, Release) ==="
cmake -B build-werror -S . -DDODUO_WERROR=ON >/dev/null
cmake --build build-werror -j "${jobs}"

echo "=== thread-safety analysis (Clang -Wthread-safety) ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-ts -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DDODUO_THREAD_SAFETY=ON >/dev/null
  cmake --build build-ts -j "${jobs}"
else
  echo "no clang++ on PATH; skipping (annotations are no-ops under GCC)"
fi

echo "=== AddressSanitizer ==="
cmake -B build-asan -S . -DDODUO_ASAN=ON >/dev/null
cmake --build build-asan -j "${jobs}" --target nn_test transformer_test \
  serve_test
(cd build-asan/tests &&
 ./nn_test --gtest_brief=1 &&
 ./transformer_test --gtest_brief=1 &&
 ./serve_test --gtest_brief=1)

echo "=== ThreadSanitizer ==="
cmake -B build-tsan -S . -DDODUO_TSAN=ON >/dev/null
cmake --build build-tsan -j "${jobs}" --target nn_test transformer_test \
  serve_test
(cd build-tsan/tests &&
 DODUO_NUM_THREADS=8 DODUO_PARALLEL_THRESHOLD=1 ./nn_test --gtest_brief=1 &&
 DODUO_NUM_THREADS=8 DODUO_PARALLEL_THRESHOLD=1 ./transformer_test \
   --gtest_brief=1 &&
 DODUO_NUM_THREADS=8 DODUO_PARALLEL_THRESHOLD=1 ./serve_test \
   --gtest_brief=1)

echo "=== UndefinedBehaviorSanitizer ==="
cmake -B build-ubsan -S . -DDODUO_UBSAN=ON >/dev/null
cmake --build build-ubsan -j "${jobs}"
echo "--- dirty-input suite (DESIGN §15: raw fixture bytes + sanitizer + robust path) ---"
# Focused gate before the full run: the malformed-CSV fixture corpus, the
# column sanitizer heuristics, confidence calibration, and the robust
# annotation path — the code that chews untrusted bytes — must be clean
# under UBSan on their own, so a regression here is named, not buried in
# the tier-1 wall of output.
ctest --test-dir build-ubsan --output-on-failure -j "${jobs}" \
  -R 'DirtyFixtures|ColumnSanitizer|NullMarker|SkipReason|CalibratedConfidence|FitTemperature|AnnotatorRobust'
ctest --test-dir build-ubsan --output-on-failure -j "${jobs}"

echo "=== all checks passed (lint + quant gate + -Werror + thread-safety; ${sanitizer_filter} under ASan/TSan; tier-1 under UBSan) ==="
