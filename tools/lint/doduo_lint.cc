// doduo_lint: project-invariant static analysis (DESIGN §11).
//
//   doduo_lint [repo-root]
//
// Walks src/, tools/, bench/, examples/, and tests/ under the repo root
// (default: the current directory), collects every Status/Result-returning
// function name from the sources, then lints each file against the rules:
//
//   discarded-status   ignored call to a Status/Result-returning function
//   no-abort           abort/exit/assert outside util/logging|status|mutex
//   no-raw-random      rand/srand/time/random_device outside util/rng
//   no-naked-new       new/delete/malloc in nn/ and transformer/ kernels
//   header-guard       headers open with #pragma once or an include guard
//   include-order      own header, then <system>, then "project" includes
//   metrics-in-loop    GetCounter/GetHistogram lookup inside a loop body
//   serve-raw-io       raw POSIX socket/IO call in serve/ outside socket_io
//   raw-mutex          std::mutex/lock_guard/condition_variable/... outside
//                      doduo/util; use util::Mutex/MutexLock/CondVar
//   detached-thread    std::thread::detach() anywhere in the tree
//   sleep-sync         sleep_for/sleep_until as synchronization in serve
//                      tests; wait on the observable condition instead
//
// Violations print as "file:line: rule-id message"; a `// NOLINT(rule-id)`
// comment on the offending line suppresses them. Exit status is 0 when the
// tree is clean, 1 when violations were found, 2 on usage/IO errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint_engine.h"

namespace {

namespace fs = std::filesystem;

bool HasExtension(const fs::path& p, std::string_view ext) {
  return p.extension() == ext;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: doduo_lint [repo-root]\n");
    return 2;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::current_path();
  const std::vector<fs::path> scopes = {"src", "tools", "bench", "examples",
                                        "tests"};

  // Gather the files in a stable order so output is deterministic.
  std::vector<fs::path> files;
  for (const fs::path& scope : scopes) {
    const fs::path dir = root / scope;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      if (HasExtension(p, ".h") || HasExtension(p, ".cc") ||
          HasExtension(p, ".cpp")) {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "doduo_lint: no sources found under %s\n",
                 root.string().c_str());
    return 2;
  }

  // Pass 1: learn which functions return util::Status / util::Result.
  doduo::lint::LintOptions options;
  std::vector<std::pair<std::string, std::string>> sources;  // (rel, text)
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    std::string text;
    if (!ReadFile(p, &text)) {
      std::fprintf(stderr, "doduo_lint: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    doduo::lint::CollectStatusFunctions(text, &options.status_functions);
    sources.emplace_back(fs::relative(p, root).generic_string(),
                         std::move(text));
  }

  // Pass 2: lint.
  size_t total = 0;
  for (const auto& [rel, text] : sources) {
    for (const doduo::lint::Violation& v :
         doduo::lint::LintSource(rel, text, options)) {
      std::printf("%s\n", doduo::lint::FormatViolation(v).c_str());
      ++total;
    }
  }
  if (total > 0) {
    std::printf("doduo_lint: %zu violation(s) across %zu file(s)\n", total,
                sources.size());
    return 1;
  }
  std::printf("doduo_lint: %zu file(s) clean\n", sources.size());
  return 0;
}
