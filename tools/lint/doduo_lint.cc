// doduo_lint: project-invariant static analysis (DESIGN §11, §16).
//
//   doduo_lint [--all] [--fix] [--format=text|json]
//              [--baseline=FILE] [--write-baseline=FILE] [repo-root]
//
// Walks src/, tools/, bench/, examples/, and tests/ under the repo root
// (default: the current directory), collects every Status/Result-returning
// function name from the sources, then lints each file against the
// per-file rules:
//
//   discarded-status   ignored call to a Status/Result-returning function
//   no-abort           abort/exit/assert outside util/logging|status|mutex
//   no-raw-random      rand/srand/time/random_device outside util/rng
//   no-naked-new       new/delete/malloc in nn/ and transformer/ kernels
//   header-guard       headers open with #pragma once or an include guard
//   include-order      own header, then <system>, then "project" includes
//   metrics-in-loop    GetCounter/GetHistogram lookup inside a loop body
//   serve-raw-io       raw POSIX socket/IO call in serve/ outside socket_io
//   raw-mutex          std::mutex/lock_guard/condition_variable/... outside
//                      doduo/util; use util::Mutex/MutexLock/CondVar
//   detached-thread    std::thread::detach() anywhere in the tree
//   sleep-sync         sleep_for/sleep_until as synchronization in serve
//                      tests; wait on the observable condition instead
//
// With --all, the whole-program passes (graph_rules.h) run on top:
//
//   layering           module include DAG (util → text → table → … → serve)
//   include-cycle      file-level include graph is acyclic
//   frame-symmetry     serve FrameType ids dense + paired + wired + fuzzed
//   metrics-registry   metric names match util/metric_names.h exactly
//   hot-path-alloc     no alloc reachable from the encoder forward path
//
// --fix rewrites files in place for the mechanical rules (include-order,
// header-guard); the result is idempotent. --format=json emits a
// SARIF-lite report on stdout for CI artifacts. --baseline=FILE suppresses
// known violations ("rule path" per line, '#' comments); when the flag is
// absent, tools/lint/lint_baseline.txt under the repo root is used if it
// exists. --write-baseline=FILE snapshots current violations and exits 0.
//
// Violations print as "file:line: rule-id message"; a `// NOLINT(rule-id)`
// comment on the offending line suppresses them. Exit status is 0 when the
// tree is clean, 1 when violations were found, 2 on usage/IO errors —
// scripts can tell "dirty tree" from "broken invocation".

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/graph_rules.h"
#include "lint/lint_engine.h"
#include "lint/project_model.h"

namespace {

namespace fs = std::filesystem;

bool HasExtension(const fs::path& p, std::string_view ext) {
  return p.extension() == ext;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return out.good();
}

/// Baseline: accepted (rule, repo-relative path) pairs.
using Baseline = std::set<std::pair<std::string, std::string>>;

bool LoadBaseline(const fs::path& path, Baseline* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, file;
    if (fields >> rule >> file) out->emplace(rule, file);
  }
  return true;
}

void JsonEscape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// SARIF-lite: the subset of SARIF that CI annotators actually read —
/// one result per violation with ruleId, level, message, and location.
std::string FormatJson(const std::vector<doduo::lint::Violation>& violations,
                       size_t files_scanned, size_t baselined) {
  std::string out = "{\n  \"tool\": \"doduo_lint\",\n  \"results\": [";
  bool first = true;
  for (const doduo::lint::Violation& v : violations) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"ruleId\": \"";
    JsonEscape(v.rule, &out);
    out += "\", \"level\": \"error\", \"message\": \"";
    JsonEscape(v.message, &out);
    out += "\", \"location\": {\"file\": \"";
    JsonEscape(v.file, &out);
    out += "\", \"line\": " + std::to_string(v.line) + "}}";
  }
  out += violations.empty() ? "],\n" : "\n  ],\n";
  out += "  \"summary\": {\"files\": " + std::to_string(files_scanned) +
         ", \"violations\": " + std::to_string(violations.size()) +
         ", \"baselined\": " + std::to_string(baselined) + "}\n}\n";
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: doduo_lint [--all] [--fix] [--format=text|json]\n"
               "                  [--baseline=FILE] [--write-baseline=FILE]\n"
               "                  [repo-root]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  bool fix = false;
  std::string format = "text";
  std::string baseline_flag;
  std::string write_baseline;
  fs::path root;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--all") {
      all = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return Usage();
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_flag = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline = arg.substr(17);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (root.empty()) {
      root = fs::path(arg);
    } else {
      return Usage();
    }
  }
  if (root.empty()) root = fs::current_path();

  // Gather the files in a stable order so output is deterministic. A
  // directory that exists but cannot be walked is an I/O error, not a
  // clean subtree.
  const std::vector<fs::path> scopes = {"src", "tools", "bench", "examples",
                                        "tests"};
  std::vector<fs::path> files;
  for (const fs::path& scope : scopes) {
    const fs::path dir = root / scope;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    auto it = fs::recursive_directory_iterator(dir, ec);
    for (; !ec && it != fs::recursive_directory_iterator();
         it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      if (HasExtension(p, ".h") || HasExtension(p, ".cc") ||
          HasExtension(p, ".cpp")) {
        files.push_back(p);
      }
    }
    if (ec) {
      std::fprintf(stderr, "doduo_lint: error walking %s: %s\n",
                   dir.string().c_str(), ec.message().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "doduo_lint: no sources found under %s\n",
                 root.string().c_str());
    return 2;
  }

  // Load every file up front: the status-function scan, --fix, and the
  // whole-program model all want (repo-relative path, text) pairs.
  doduo::lint::LintOptions options;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    std::string text;
    if (!ReadFile(p, &text)) {
      std::fprintf(stderr, "doduo_lint: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    sources.emplace_back(fs::relative(p, root).generic_string(),
                         std::move(text));
  }

  if (fix) {
    size_t files_fixed = 0;
    int total_fixes = 0;
    for (size_t i = 0; i < sources.size(); ++i) {
      int applied = 0;
      std::string fixed = doduo::lint::ApplyFixes(sources[i].first,
                                                  sources[i].second, &applied);
      if (applied == 0) continue;
      if (!WriteFile(files[i], fixed)) {
        std::fprintf(stderr, "doduo_lint: cannot write %s\n",
                     files[i].string().c_str());
        return 2;
      }
      std::fprintf(stderr, "doduo_lint: fixed %s (%d fix(es))\n",
                   sources[i].first.c_str(), applied);
      sources[i].second = std::move(fixed);
      ++files_fixed;
      total_fixes += applied;
    }
    std::fprintf(stderr, "doduo_lint: --fix applied %d fix(es) in %zu file(s)\n",
                 total_fixes, files_fixed);
  }

  for (const auto& [rel, text] : sources) {
    doduo::lint::CollectStatusFunctions(text, &options.status_functions);
  }

  std::vector<doduo::lint::Violation> violations;
  for (const auto& [rel, text] : sources) {
    for (doduo::lint::Violation& v :
         doduo::lint::LintSource(rel, text, options)) {
      violations.push_back(std::move(v));
    }
  }
  size_t files_scanned = sources.size();
  if (all) {
    doduo::lint::ProjectModel model =
        doduo::lint::ProjectModel::Build(std::move(sources));
    for (doduo::lint::Violation& v :
         doduo::lint::RunGraphRules(model, doduo::lint::GraphRuleOptions{})) {
      violations.push_back(std::move(v));
    }
  }
  std::sort(violations.begin(), violations.end(),
            [](const doduo::lint::Violation& a,
               const doduo::lint::Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  violations.erase(
      std::unique(violations.begin(), violations.end(),
                  [](const doduo::lint::Violation& a,
                     const doduo::lint::Violation& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule;
                  }),
      violations.end());

  if (!write_baseline.empty()) {
    std::string text =
        "# doduo_lint baseline: accepted pre-existing violations.\n"
        "# One \"rule path\" pair per line; '#' starts a comment.\n";
    Baseline pairs;
    for (const doduo::lint::Violation& v : violations) {
      pairs.emplace(v.rule, v.file);
    }
    for (const auto& [rule, file] : pairs) {
      text += rule + " " + file + "\n";
    }
    if (!WriteFile(write_baseline, text)) {
      std::fprintf(stderr, "doduo_lint: cannot write %s\n",
                   write_baseline.c_str());
      return 2;
    }
    std::fprintf(stderr, "doduo_lint: wrote %zu baseline entrie(s) to %s\n",
                 pairs.size(), write_baseline.c_str());
    return 0;
  }

  // Baseline: an explicit --baseline=FILE must exist; the implicit
  // tools/lint/lint_baseline.txt is optional.
  Baseline baseline;
  if (!baseline_flag.empty()) {
    if (!LoadBaseline(baseline_flag, &baseline)) {
      std::fprintf(stderr, "doduo_lint: cannot read baseline %s\n",
                   baseline_flag.c_str());
      return 2;
    }
  } else {
    LoadBaseline(root / "tools/lint/lint_baseline.txt", &baseline);
  }
  size_t baselined = 0;
  if (!baseline.empty()) {
    auto keep = std::remove_if(
        violations.begin(), violations.end(),
        [&](const doduo::lint::Violation& v) {
          return baseline.count({v.rule, v.file}) > 0;
        });
    baselined = static_cast<size_t>(violations.end() - keep);
    violations.erase(keep, violations.end());
  }

  if (format == "json") {
    std::fputs(FormatJson(violations, files_scanned, baselined).c_str(),
               stdout);
    return violations.empty() ? 0 : 1;
  }
  for (const doduo::lint::Violation& v : violations) {
    std::printf("%s\n", doduo::lint::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::printf("doduo_lint: %zu violation(s) across %zu file(s)%s\n",
                violations.size(), files_scanned,
                baselined > 0
                    ? (" (" + std::to_string(baselined) + " baselined)")
                          .c_str()
                    : "");
    return 1;
  }
  std::printf("doduo_lint: %zu file(s) clean%s\n", files_scanned,
              baselined > 0
                  ? (" (" + std::to_string(baselined) + " baselined)").c_str()
                  : "");
  return 0;
}
