#ifndef DODUO_TOOLS_LINT_GRAPH_RULES_H_
#define DODUO_TOOLS_LINT_GRAPH_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "lint/project_model.h"

// Whole-program passes over the ProjectModel (DESIGN §16). Each pass
// checks a property no single-file scan can see:
//
//   layering         the module DAG (util → text → table → … → serve) has
//                    no upward or sideways includes
//   include-cycle    the file-level include graph is acyclic
//   frame-symmetry   every serve FrameType id is dense, Request/Response
//                    paired, wired into both client and server, referenced
//                    by tests, and its payload codecs come in
//                    Encode/Decode pairs with fuzz coverage
//   metrics-registry every metric name literal passed to
//                    GetCounter/GetHistogram exists in the central
//                    util/metric_names.h registry (and every registered
//                    name is used somewhere)
//   hot-path-alloc   no allocation or growing-container call in any
//                    function reachable from the encoder forward path
//                    (mechanizes the allocs_per_iter=0 contract)
//
// All knobs live in GraphRuleOptions so tests can point the passes at
// synthetic in-memory repositories; the defaults describe the real tree.

namespace doduo::lint {

inline constexpr char kRuleLayering[] = "layering";
inline constexpr char kRuleIncludeCycle[] = "include-cycle";
inline constexpr char kRuleFrameSymmetry[] = "frame-symmetry";
inline constexpr char kRuleMetricsRegistry[] = "metrics-registry";
inline constexpr char kRuleHotPathAlloc[] = "hot-path-alloc";

struct GraphRuleOptions {
  /// Module -> layer rank; includes may only point strictly downward.
  std::map<std::string, int, std::less<>> layer_ranks = DefaultLayerRanks();

  // frame-symmetry inputs.
  std::string protocol_header_suffix = "serve/protocol.h";
  std::string frame_enum = "FrameType";
  std::string encode_file_suffix = "serve/client.cc";
  std::string decode_file_suffix = "serve/server.cc";
  std::string test_dir_prefix = "tests/";
  std::string fuzz_marker = "fuzz";

  // metrics-registry inputs.
  std::string registry_header_suffix = "util/metric_names.h";
  /// Name prefixes that need no registration (ad-hoc test metrics).
  std::vector<std::string> metric_exempt_prefixes = {"test."};

  // hot-path-alloc inputs.
  struct HotPathRoot {
    std::string file_contains;  // substring of the defining file's path
    std::string function;       // function name
  };
  std::vector<HotPathRoot> hot_path_roots = {
      {"transformer/encoder", "Forward"}};
  /// Modules whose function definitions participate in the call graph.
  std::vector<std::string> hot_path_modules = {"nn", "transformer"};
  /// Path substrings exempt from the audit: the buffer/arena primitives
  /// themselves (nn::Tensor, nn::Workspace) are the instrumented
  /// allocation choke points the rest of the hot path must go through.
  std::vector<std::string> hot_path_exempt_paths = {"nn/tensor",
                                                    "nn/workspace"};
};

/// Runs every whole-program pass. Violations honor the per-line
/// `// NOLINT(rule-id)` escapes of the file they attach to, and are
/// deduplicated on (file, line, rule) and sorted.
std::vector<Violation> RunGraphRules(const ProjectModel& model,
                                     const GraphRuleOptions& options);

}  // namespace doduo::lint

#endif  // DODUO_TOOLS_LINT_GRAPH_RULES_H_
