#include "lint/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace doduo::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preparation: comment/string stripping and NOLINT extraction.
// ---------------------------------------------------------------------------

/// Parses the body of one comment for NOLINT annotations and records them
/// against `line` (the line the comment starts on, which is where the
/// offending code sits by convention).
void RecordNolint(std::string_view comment, int line, Suppressions* out) {
  size_t pos = comment.find("NOLINT");
  if (pos == std::string_view::npos) return;
  size_t after = pos + 6;  // past "NOLINT"
  if (after < comment.size() && comment[after] == '(') {
    size_t close = comment.find(')', after);
    std::string_view list = comment.substr(
        after + 1,
        close == std::string_view::npos ? comment.size() - after - 1
                                        : close - after - 1);
    auto& rules = (*out)[line];
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      std::string_view item = list.substr(
          start, comma == std::string_view::npos ? list.size() - start
                                                 : comma - start);
      while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                  item.front()))) {
        item.remove_prefix(1);
      }
      while (!item.empty() &&
             std::isspace(static_cast<unsigned char>(item.back()))) {
        item.remove_suffix(1);
      }
      if (!item.empty()) rules.emplace(item);
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  } else {
    (*out)[line];  // bare NOLINT: empty set = silence everything
  }
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool PathContains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

/// Stem of a path: "src/doduo/nn/ops.cc" -> "ops".
std::string_view PathStem(std::string_view path) {
  size_t slash = path.find_last_of('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string_view::npos ? base : base.substr(0, dot);
}

}  // namespace

std::string StripSource(std::string_view src, Suppressions* suppressions) {
  std::string out(src);
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  auto blank = [&out](size_t from, size_t to) {
    for (size_t k = from; k < to; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      RecordNolint(src.substr(i, end - i), line, suppressions);
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      const int start_line = line;
      end = (end == std::string_view::npos) ? n : end + 2;
      RecordNolint(src.substr(i, end - i), start_line, suppressions);
      line += static_cast<int>(
          std::count(src.begin() + static_cast<long>(i),
                     src.begin() + static_cast<long>(end), '\n'));
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string: R"delim( ... )delim"
      size_t open = src.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      std::string closer = ")";
      closer.append(src.substr(i + 2, open - i - 2));
      closer.push_back('"');
      size_t end = src.find(closer, open + 1);
      end = (end == std::string_view::npos) ? n : end + closer.size();
      line += static_cast<int>(
          std::count(src.begin() + static_cast<long>(i),
                     src.begin() + static_cast<long>(end), '\n'));
      blank(i + 1, end);  // keep the leading R so tokens don't merge
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated literal; stay sane
        ++j;
      }
      if (j < n) ++j;  // past closing quote
      blank(i + 1, j > i + 1 ? j - 1 : j);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

bool IsSuppressed(const Suppressions& suppressions, int line,
                  std::string_view rule) {
  auto it = suppressions.find(line);
  return it != suppressions.end() &&
         (it->second.empty() || it->second.count(rule) > 0);
}

std::vector<Token> Tokenize(std::string_view stripped) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = stripped.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Skip the directive, including continuation lines.
      while (i < n) {
        size_t end = stripped.find('\n', i);
        if (end == std::string_view::npos) {
          i = n;
          break;
        }
        size_t last = end;
        while (last > i &&
               std::isspace(static_cast<unsigned char>(stripped[last - 1]))) {
          --last;
        }
        const bool continued = last > i && stripped[last - 1] == '\\';
        ++line;
        i = end + 1;
        if (!continued) break;
      }
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(stripped[j])) ++j;
      tokens.push_back(
          {stripped.substr(i, j - i), TokenKind::kIdent, line, i});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;  // pp-number: digits, letters, dots, exponent signs
      while (j < n && (IsIdentChar(stripped[j]) || stripped[j] == '.' ||
                       ((stripped[j] == '+' || stripped[j] == '-') &&
                        (stripped[j - 1] == 'e' || stripped[j - 1] == 'E' ||
                         stripped[j - 1] == 'p' || stripped[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back(
          {stripped.substr(i, j - i), TokenKind::kNumber, line, i});
      i = j;
    } else {
      size_t len = 1;
      if (i + 1 < n) {
        const char d = stripped[i + 1];
        if ((c == ':' && d == ':') || (c == '-' && d == '>')) len = 2;
      }
      tokens.push_back({stripped.substr(i, len), TokenKind::kPunct, line, i});
      i += len;
    }
  }
  return tokens;
}

int MatchParen(const std::vector<Token>& toks, int open) {
  int depth = 0;
  for (int i = open; i < static_cast<int>(toks.size()); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return -1;
}

std::vector<StringLiteral> CollectStringLiterals(std::string_view source) {
  std::vector<StringLiteral> literals;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      i = (end == std::string_view::npos) ? n : end;
    } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      end = (end == std::string_view::npos) ? n : end + 2;
      line += static_cast<int>(
          std::count(source.begin() + static_cast<long>(i),
                     source.begin() + static_cast<long>(end), '\n'));
      i = end;
    } else if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t open = source.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      std::string closer = ")";
      closer.append(source.substr(i + 2, open - i - 2));
      closer.push_back('"');
      size_t end = source.find(closer, open + 1);
      const size_t body_end = (end == std::string_view::npos) ? n : end;
      literals.push_back({std::string(source.substr(open + 1,
                                                    body_end - open - 1)),
                          line, i});
      end = (end == std::string_view::npos) ? n : end + closer.size();
      line += static_cast<int>(
          std::count(source.begin() + static_cast<long>(i),
                     source.begin() + static_cast<long>(end), '\n'));
      i = end;
    } else if (c == '"') {
      const size_t start = i;
      const int start_line = line;
      std::string text;
      size_t j = i + 1;
      while (j < n && source[j] != '"') {
        if (source[j] == '\\' && j + 1 < n) {
          text.push_back(source[j]);
          ++j;
        }
        if (source[j] == '\n') ++line;
        text.push_back(source[j]);
        ++j;
      }
      if (j < n) ++j;
      literals.push_back({std::move(text), start_line, start});
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != '\'') {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') ++line;
        ++j;
      }
      i = (j < n) ? j + 1 : j;
    } else {
      ++i;
    }
  }
  return literals;
}

namespace {

// ---------------------------------------------------------------------------
// Rule engine.
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string_view path, std::string_view source,
         const LintOptions& options)
      : path_(path), source_(source), options_(options) {
    stripped_ = StripSource(source, &suppressions_);
    tokens_ = Tokenize(stripped_);
  }

  std::vector<Violation> Run() {
    CheckCallTokens();
    CheckMetricsInLoop();
    CheckInt8Kernels();
    CheckHeaderGuard();
    CheckIncludeOrder();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return std::pair(a.line, a.rule) < std::pair(b.line, b.rule);
              });
    // One report per (file, line, rule): a line with two offending tokens
    // is one finding, not two identical diagnostics.
    violations_.erase(
        std::unique(violations_.begin(), violations_.end(),
                    [](const Violation& a, const Violation& b) {
                      return a.line == b.line && a.rule == b.rule;
                    }),
        violations_.end());
    return std::move(violations_);
  }

 private:
  /// Reports at `line` unless a NOLINT on any line of [line, end_line]
  /// covers the rule — statements that span lines accept the escape hatch
  /// wherever the statement's text actually is (typically its last line).
  void ReportSpan(int line, int end_line, std::string_view rule,
                  std::string message) {
    for (int l = line; l <= std::max(line, end_line); ++l) {
      if (IsSuppressed(suppressions_, l, rule)) return;
    }
    violations_.push_back(
        {std::string(path_), line, std::string(rule), std::move(message)});
  }

  void Report(int line, std::string_view rule, std::string message) {
    ReportSpan(line, line, rule, std::move(message));
  }

  /// Last line of the call whose name token sits at `i` (the line of the
  /// matching close paren), or the name's own line when unbalanced.
  int CallEndLine(int i) const {
    if (i + 1 < static_cast<int>(tokens_.size()) &&
        tokens_[i + 1].text == "(") {
      const int close = MatchParen(tokens_, i + 1);
      if (close >= 0) return tokens_[close].line;
    }
    return tokens_[i].line;
  }

  const Token* Prev(int i) const { return i > 0 ? &tokens_[i - 1] : nullptr; }

  bool IsMemberAccess(int i) const {
    const Token* p = Prev(i);
    return p != nullptr && (p->text == "." || p->text == "->");
  }

  /// Walks a postfix chain (`a.b->c::Call`) backwards from the name at `i`
  /// to the chain's first token. Returns -1 when the receiver is itself a
  /// call or similarly complex (the caller then stays silent).
  int ChainStart(int i) const {
    int k = i;
    while (k >= 1) {
      const std::string_view sep = tokens_[k - 1].text;
      if (sep != "." && sep != "->" && sep != "::") return k;
      if (k < 2) return -1;
      if (tokens_[k - 2].kind != TokenKind::kIdent) return -1;
      k -= 2;
    }
    return k;
  }

  // discarded-status, no-abort, no-raw-random, no-naked-new, raw-mutex,
  // detached-thread, sleep-sync: one pass over the token stream.
  void CheckCallTokens() {
    // util/mutex joins the exempt set: the lock-order deadlock detector is
    // itself a fatal-assertion site (it aborts with the inversion cycle).
    const bool abort_exempt = PathContains(path_, "util/logging") ||
                              PathContains(path_, "util/status") ||
                              PathContains(path_, "util/check") ||
                              PathContains(path_, "util/mutex");
    const bool random_exempt = PathContains(path_, "util/rng") ||
                               PathContains(path_, "util/logging");
    const bool arena_scoped =
        PathContains(path_, "nn/") || PathContains(path_, "transformer/");
    // serve-raw-io: raw POSIX socket/fd calls are confined to
    // serve/socket_io.{h,cc}, whose [[nodiscard]] wrappers carry the
    // Status contract (and whose names CollectStatusFunctions picks up, so
    // discarded-status covers their call sites automatically).
    const bool serve_scoped = PathContains(path_, "serve/") &&
                              !PathContains(path_, "serve/socket_io");
    // raw-mutex: std synchronization primitives are confined to
    // doduo/util/ (mutex.{h,cc} wrap them with thread-safety annotations
    // and the deadlock detector; thread_pool predates Mutex's CondVar).
    // Everything else must use util::Mutex/MutexLock/CondVar so locks are
    // named, annotated, and order-checked (DESIGN §13).
    const bool mutex_exempt = PathContains(path_, "doduo/util/");
    static constexpr std::string_view kRawMutexNames[] = {
        "mutex",         "timed_mutex",        "recursive_mutex",
        "recursive_timed_mutex",               "shared_mutex",
        "shared_timed_mutex",                  "lock_guard",
        "unique_lock",   "scoped_lock",        "shared_lock",
        "condition_variable",                  "condition_variable_any"};
    // sleep-sync: in serve tests, sleeping is never synchronization — it
    // trades flake for latency. Wait on the observable condition instead
    // (client reply, metrics snapshot, Server::WaitFor).
    const bool sleep_scoped = PathContains(path_, "tests/serve");
    static constexpr std::string_view kRawIoNames[] = {
        "socket",  "bind",     "listen",   "accept",      "accept4",
        "connect", "send",     "recv",     "sendto",      "recvfrom",
        "read",    "write",    "close",    "shutdown",    "setsockopt",
        "getsockopt",          "getsockname",             "getpeername",
        "poll",    "select",   "epoll_wait"};
    const int n = static_cast<int>(tokens_.size());
    for (int i = 0; i < n; ++i) {
      const Token& t = tokens_[i];
      if (t.kind != TokenKind::kIdent) continue;
      const bool call = i + 1 < n && tokens_[i + 1].text == "(";

      if (!abort_exempt && call && !IsMemberAccess(i) &&
          (t.text == "abort" || t.text == "exit" || t.text == "_Exit" ||
           t.text == "quick_exit" || t.text == "assert")) {
        ReportSpan(t.line, CallEndLine(i), kRuleNoAbort,
                   "call to '" + std::string(t.text) +
                       "' outside util/logging|status; return util::Status "
                       "or use DODUO_CHECK");
      }

      if (!random_exempt && !IsMemberAccess(i)) {
        if ((call && (t.text == "rand" || t.text == "srand" ||
                      t.text == "time")) ||
            t.text == "random_device") {
          ReportSpan(t.line, CallEndLine(i), kRuleNoRawRandom,
                     "'" + std::string(t.text) +
                         "' breaks the determinism contract; use util::Rng "
                         "(seeded) instead");
        }
      }

      if (arena_scoped) {
        if (t.text == "new") {
          Report(t.line, kRuleNoNakedNew,
                 "naked 'new' in kernel code; use nn::Workspace arenas or "
                 "containers");
        } else if (t.text == "delete") {
          const Token* p = Prev(i);
          if (p == nullptr || p->text != "=") {
            Report(t.line, kRuleNoNakedNew,
                   "naked 'delete' in kernel code; use nn::Workspace arenas "
                   "or containers");
          }
        } else if (call && !IsMemberAccess(i) &&
                   (t.text == "malloc" || t.text == "calloc" ||
                    t.text == "realloc" || t.text == "free")) {
          Report(t.line, kRuleNoNakedNew,
                 "raw '" + std::string(t.text) +
                     "' in kernel code; use nn::Workspace arenas or "
                     "containers");
        }
      }

      if (serve_scoped && call && !IsMemberAccess(i)) {
        for (const std::string_view raw : kRawIoNames) {
          if (t.text == raw) {
            ReportSpan(t.line, CallEndLine(i), kRuleServeRawIo,
                       "raw POSIX I/O call '" + std::string(t.text) +
                           "' outside serve/socket_io; use the "
                           "Status-returning wrappers in serve/socket_io.h");
            break;
          }
        }
      }

      if (!mutex_exempt && i >= 2 && tokens_[i - 1].text == "::" &&
          tokens_[i - 2].text == "std") {
        for (const std::string_view name : kRawMutexNames) {
          if (t.text == name) {
            Report(t.line, kRuleRawMutex,
                   "raw 'std::" + std::string(t.text) +
                       "' outside doduo/util; use util::Mutex / "
                       "util::MutexLock / util::CondVar (annotated + "
                       "deadlock-checked, DESIGN §13)");
            break;
          }
        }
      }

      if (call && IsMemberAccess(i) && t.text == "detach") {
        Report(t.line, kRuleDetachedThread,
               "detached thread outlives its owner and skips shutdown "
               "ordering; keep a handle and join() it");
      }

      if (sleep_scoped && call &&
          (t.text == "sleep_for" || t.text == "sleep_until")) {
        ReportSpan(t.line, CallEndLine(i), kRuleSleepSync,
                   "'" + std::string(t.text) +
                       "' as synchronization in a serve test is a race "
                       "hidden behind a timer; wait on the observable "
                       "condition instead");
      }

      if (call && options_.status_functions.count(t.text) > 0) {
        CheckDiscardedStatus(i);
      }
    }
  }

  /// tokens_[i] names a Status/Result-returning function and tokens_[i+1]
  /// is "(": flags the call when it forms a whole expression statement.
  void CheckDiscardedStatus(int i) {
    const int close = MatchParen(tokens_, i + 1);
    if (close < 0 || close + 1 >= static_cast<int>(tokens_.size())) return;
    if (tokens_[close + 1].text != ";") return;
    const int start = ChainStart(i);
    if (start < 0) return;
    // The statement's NOLINT may sit on any of its lines (multi-line calls
    // conventionally carry it after the closing paren).
    const int end_line = tokens_[close + 1].line;
    if (start == 0) {
      ReportDiscarded(tokens_[i], end_line);
      return;
    }
    const Token& prev = tokens_[start - 1];
    const std::string_view p = prev.text;
    if (p == ";" || p == "{" || p == "}" || p == ":" || p == "else" ||
        p == "do") {
      ReportDiscarded(tokens_[i], end_line);
    } else if (p == ")") {
      // `(void)Call();` is an explicit discard; `if (...) Call();` is not.
      const bool void_cast = start >= 3 && tokens_[start - 2].text == "void" &&
                             tokens_[start - 3].text == "(";
      if (!void_cast) ReportDiscarded(tokens_[i], end_line);
    }
  }

  void ReportDiscarded(const Token& name, int end_line) {
    ReportSpan(name.line, end_line, kRuleDiscardedStatus,
               "result of Status-returning '" + std::string(name.text) +
                   "' is ignored; check .ok() or cast to (void) with a "
                   "reason");
  }

  // metrics-in-loop: registry lookups (GetCounter/GetHistogram) must be
  // hoisted out of loops into cached pointers (DESIGN §10).
  void CheckMetricsInLoop() {
    const int n = static_cast<int>(tokens_.size());
    // Pass 1: find the brace token indices that open loop bodies, and the
    // token ranges of brace-less loop body statements.
    std::vector<bool> loop_brace(tokens_.size(), false);
    std::vector<std::pair<int, int>> stmt_ranges;
    for (int i = 0; i < n; ++i) {
      const std::string_view t = tokens_[i].text;
      if (tokens_[i].kind == TokenKind::kIdent && t == "do") {
        if (i + 1 < n && tokens_[i + 1].text == "{") loop_brace[i + 1] = true;
        continue;
      }
      if (tokens_[i].kind != TokenKind::kIdent || (t != "for" && t != "while"))
        continue;
      if (i + 1 >= n || tokens_[i + 1].text != "(") continue;
      const int close = MatchParen(tokens_, i + 1);
      if (close < 0 || close + 1 >= n) continue;
      if (tokens_[close + 1].text == "{") {
        loop_brace[close + 1] = true;
      } else if (tokens_[close + 1].text != ";") {
        // Brace-less body: runs to the next ';' at paren depth zero.
        int depth = 0;
        for (int j = close + 1; j < n; ++j) {
          if (tokens_[j].text == "(") ++depth;
          if (tokens_[j].text == ")") --depth;
          if (tokens_[j].text == ";" && depth <= 0) {
            stmt_ranges.emplace_back(close + 1, j);
            break;
          }
        }
      }
    }
    // Pass 2: walk with a loop-depth stack and flag lookups inside.
    std::vector<int> loop_depths;
    int depth = 0;
    size_t range = 0;
    for (int i = 0; i < n; ++i) {
      const std::string_view t = tokens_[i].text;
      if (t == "{") {
        ++depth;
        if (loop_brace[i]) loop_depths.push_back(depth);
      } else if (t == "}") {
        if (!loop_depths.empty() && loop_depths.back() == depth) {
          loop_depths.pop_back();
        }
        --depth;
      } else if (tokens_[i].kind == TokenKind::kIdent &&
                 (t == "GetCounter" || t == "GetHistogram")) {
        while (range < stmt_ranges.size() && stmt_ranges[range].second < i) {
          ++range;
        }
        const bool in_stmt = range < stmt_ranges.size() &&
                             stmt_ranges[range].first <= i &&
                             i <= stmt_ranges[range].second;
        if (!loop_depths.empty() || in_stmt) {
          ReportSpan(tokens_[i].line, CallEndLine(i), kRuleMetricsInLoop,
                     "metrics registry lookup '" + std::string(t) +
                         "' inside a loop; resolve the pointer once outside "
                         "(cached-pointer pattern, DESIGN §10)");
        }
      }
    }
  }

  // quant-no-float-in-int8-kernel: the int8 GEMM contract (DESIGN §14) is
  // that accumulation is pure integer math — that is what makes the kernels
  // bit-identical across ISAs and thread counts. A function whose name
  // matches *Int8*Kernel* must therefore contain no float/double types, no
  // floating-point literals, and no *_ps/*_pd SIMD intrinsics; the dequant
  // epilogue belongs in a differently-named caller.
  void CheckInt8Kernels() {
    const int n = static_cast<int>(tokens_.size());
    auto is_kernel_name = [](std::string_view name) {
      const size_t int8 = name.find("Int8");
      return int8 != std::string_view::npos &&
             name.find("Kernel", int8 + 4) != std::string_view::npos;
    };
    for (int i = 0; i < n; ++i) {
      const Token& t = tokens_[i];
      if (t.kind != TokenKind::kIdent || !is_kernel_name(t.text)) continue;
      if (i + 1 >= n || tokens_[i + 1].text != "(") continue;
      const int close = MatchParen(tokens_, i + 1);
      if (close < 0) continue;
      // Skip trailing specifiers to the body brace; a ';' means this was
      // only a declaration (or a call — either way, no body to check).
      int open = close + 1;
      while (open < n && (tokens_[open].text == "const" ||
                          tokens_[open].text == "noexcept" ||
                          tokens_[open].text == "override")) {
        ++open;
      }
      if (open >= n || tokens_[open].text != "{") continue;
      int depth = 0;
      for (int j = open; j < n; ++j) {
        const Token& b = tokens_[j];
        if (b.text == "{") ++depth;
        if (b.text == "}" && --depth == 0) break;
        if (b.kind == TokenKind::kIdent) {
          const bool fp_intrinsic =
              b.text.size() > 3 && (b.text.ends_with("_ps") ||
                                    b.text.ends_with("_pd"));
          if (b.text == "float" || b.text == "double" || fp_intrinsic) {
            Report(b.line, kRuleQuantNoFloat,
                   "'" + std::string(b.text) + "' inside int8 kernel '" +
                       std::string(t.text) +
                       "'; int8 kernels are integer-only (the dequant "
                       "epilogue lives in the caller)");
          }
        } else if (b.kind == TokenKind::kNumber &&
                   b.text.find('.') != std::string_view::npos) {
          Report(b.line, kRuleQuantNoFloat,
                 "floating-point literal '" + std::string(b.text) +
                     "' inside int8 kernel '" + std::string(t.text) +
                     "'; int8 kernels are integer-only");
        }
      }
    }
  }

  void CheckHeaderGuard() {
    if (path_.size() < 2 || path_.substr(path_.size() - 2) != ".h") return;
    // First meaningful stripped line must be `#pragma once` or an
    // `#ifndef` guard immediately followed by its `#define`.
    std::vector<std::pair<int, std::string>> lines;  // (line number, text)
    int line = 1;
    size_t pos = 0;
    while (pos <= stripped_.size() && lines.size() < 2) {
      size_t end = stripped_.find('\n', pos);
      if (end == std::string::npos) end = stripped_.size();
      std::string text = stripped_.substr(pos, end - pos);
      const bool blank =
          std::all_of(text.begin(), text.end(), [](unsigned char c) {
            return std::isspace(c);
          });
      if (!blank) lines.emplace_back(line, std::move(text));
      if (end == stripped_.size()) break;
      pos = end + 1;
      ++line;
    }
    if (lines.empty()) return;  // empty header: nothing to guard
    auto starts_with = [](const std::string& s, std::string_view prefix) {
      size_t i = s.find_first_not_of(" \t");
      return i != std::string::npos && s.compare(i, prefix.size(), prefix) == 0;
    };
    if (starts_with(lines[0].second, "#pragma once")) return;
    if (starts_with(lines[0].second, "#ifndef") && lines.size() > 1 &&
        starts_with(lines[1].second, "#define")) {
      return;
    }
    Report(lines[0].first, kRuleHeaderGuard,
           "header must open with '#pragma once' or an #ifndef/#define "
           "include guard");
  }

  void CheckIncludeOrder() {
    // Line-wise over the ORIGINAL text: the quote form's path is a string
    // literal, which the stripper blanked. A line must start (modulo
    // whitespace) with '#', so `// #include` commented-out includes cannot
    // match.
    const std::string_view stem = PathStem(path_);
    // Test files open with the header under test (whose stem is the
    // test's minus "_test", or an unrelated fixture header), so under
    // tests/ any first quoted include counts as the own header.
    const bool test_file = path_.size() >= 6 && path_.substr(0, 6) == "tests/";
    int line = 1;
    size_t pos = 0;
    bool first_include = true;
    bool seen_project_include = false;
    while (pos <= source_.size()) {
      size_t end = source_.find('\n', pos);
      if (end == std::string_view::npos) end = source_.size();
      std::string_view text = source_.substr(pos, end - pos);
      size_t hash = text.find_first_not_of(" \t");
      if (hash != std::string_view::npos && text[hash] == '#') {
        size_t kw = text.find_first_not_of(" \t", hash + 1);
        if (kw != std::string_view::npos &&
            text.compare(kw, 7, "include") == 0) {
          size_t open = text.find_first_not_of(" \t", kw + 7);
          if (open != std::string_view::npos &&
              (text[open] == '<' || text[open] == '"')) {
            const bool system = text[open] == '<';
            bool own_header = false;
            if (first_include && !system) {
              // The first include of a .cc/.cpp should be its own header;
              // that include is exempt from group ordering.
              const char close_ch = '"';
              size_t close = text.find(close_ch, open + 1);
              if (close != std::string_view::npos) {
                own_header =
                    test_file ||
                    PathStem(text.substr(open + 1, close - open - 1)) == stem;
              }
            }
            if (!system && !own_header) seen_project_include = true;
            if (system && seen_project_include) {
              Report(line, kRuleIncludeOrder,
                     "system include after a project include; order is: own "
                     "header, <system>, then \"project\" headers");
            }
            first_include = false;
          }
        }
      }
      if (end == source_.size()) break;
      pos = end + 1;
      ++line;
    }
  }

  std::string_view path_;
  std::string_view source_;
  const LintOptions& options_;
  std::string stripped_;
  Suppressions suppressions_;
  std::vector<Token> tokens_;
  std::vector<Violation> violations_;
};

// ---------------------------------------------------------------------------
// Mechanical fixes.
// ---------------------------------------------------------------------------

std::vector<std::string> SplitLines(std::string_view source) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t end = source.find('\n', pos);
    if (end == std::string_view::npos) {
      if (pos < source.size()) lines.emplace_back(source.substr(pos));
      break;
    }
    lines.emplace_back(source.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

bool IsBlankLine(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

/// True when the line is an #include directive; sets `*system` and the
/// included path.
bool ParseIncludeLine(std::string_view line, bool* system,
                      std::string* inc_path) {
  size_t hash = line.find_first_not_of(" \t");
  if (hash == std::string_view::npos || line[hash] != '#') return false;
  size_t kw = line.find_first_not_of(" \t", hash + 1);
  if (kw == std::string_view::npos || line.compare(kw, 7, "include") != 0) {
    return false;
  }
  size_t open = line.find_first_not_of(" \t", kw + 7);
  if (open == std::string_view::npos ||
      (line[open] != '<' && line[open] != '"')) {
    return false;
  }
  *system = line[open] == '<';
  const char close_ch = *system ? '>' : '"';
  size_t close = line.find(close_ch, open + 1);
  if (close == std::string_view::npos) return false;
  *inc_path = std::string(line.substr(open + 1, close - open - 1));
  return true;
}

/// Regroups the contiguous include block into own header / <system> /
/// "project", preserving relative order within each group. Returns false
/// (leaving `lines` untouched) when the block is interleaved with code,
/// comments, or conditional compilation — that reordering needs a human.
bool FixIncludeOrder(std::string_view path, std::vector<std::string>* lines) {
  const bool test_file = path.size() >= 6 && path.substr(0, 6) == "tests/";
  const std::string_view stem = PathStem(path);
  int first = -1, last = -1;
  for (int i = 0; i < static_cast<int>(lines->size()); ++i) {
    bool system = false;
    std::string inc;
    if (ParseIncludeLine((*lines)[i], &system, &inc)) {
      if (first < 0) first = i;
      last = i;
    }
  }
  if (first < 0) return false;
  std::vector<std::string> own, systems, projects;
  bool first_include = true;
  for (int i = first; i <= last; ++i) {
    const std::string& line = (*lines)[i];
    bool system = false;
    std::string inc;
    if (ParseIncludeLine(line, &system, &inc)) {
      bool is_own = false;
      if (first_include && !system) {
        is_own = test_file || PathStem(inc) == stem;
      } else if (!system && own.empty() && !test_file &&
                 PathStem(inc) == stem) {
        // Own header buried mid-block: hoist it to the front.
        is_own = true;
      }
      first_include = false;
      (is_own ? own : system ? systems : projects).push_back(line);
    } else if (!IsBlankLine(line)) {
      return false;  // code, a comment, or an #if inside the block
    }
  }
  std::vector<std::string> block;
  auto append_group = [&block](const std::vector<std::string>& group) {
    if (group.empty()) return;
    if (!block.empty()) block.emplace_back();
    block.insert(block.end(), group.begin(), group.end());
  };
  append_group(own);
  append_group(systems);
  append_group(projects);
  std::vector<std::string> out(lines->begin(), lines->begin() + first);
  out.insert(out.end(), block.begin(), block.end());
  out.insert(out.end(), lines->begin() + last + 1, lines->end());
  *lines = std::move(out);
  return true;
}

/// DODUO_-style guard name: "src/doduo/nn/ops.h" -> DODUO_NN_OPS_H_,
/// "tools/lint/lint_engine.h" -> DODUO_TOOLS_LINT_LINT_ENGINE_H_.
std::string GuardNameForPath(std::string_view path) {
  std::string_view p = path;
  if (p.substr(0, 10) == "src/doduo/") p.remove_prefix(10);
  std::string guard = "DODUO_";
  for (char c : p) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(
                              std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

/// Inserts an #ifndef/#define/#endif guard after any leading comment
/// block.
void FixHeaderGuard(std::string_view path, std::vector<std::string>* lines) {
  const std::string guard = GuardNameForPath(path);
  int insert_at = 0;
  bool in_block_comment = false;
  for (int i = 0; i < static_cast<int>(lines->size()); ++i) {
    const std::string& line = (*lines)[i];
    const size_t start = line.find_first_not_of(" \t");
    if (in_block_comment) {
      insert_at = i + 1;
      if (line.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (start == std::string::npos) {
      insert_at = i + 1;  // blank
    } else if (line.compare(start, 2, "//") == 0) {
      insert_at = i + 1;
    } else if (line.compare(start, 2, "/*") == 0) {
      insert_at = i + 1;
      if (line.find("*/", start + 2) == std::string::npos) {
        in_block_comment = true;
      }
    } else {
      break;
    }
  }
  lines->insert(lines->begin() + insert_at,
                {"#ifndef " + guard, "#define " + guard, ""});
  while (!lines->empty() && IsBlankLine(lines->back())) lines->pop_back();
  lines->push_back("");
  lines->push_back("#endif  // " + guard);
}

}  // namespace

void CollectStatusFunctions(std::string_view source,
                            std::set<std::string, std::less<>>* out) {
  Suppressions ignored;
  const std::string stripped = StripSource(source, &ignored);
  const std::vector<Token> toks = Tokenize(stripped);
  const int n = static_cast<int>(toks.size());
  for (int i = 0; i < n; ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    int j = -1;  // first token after the return type
    if (toks[i].text == "Status") {
      j = i + 1;
    } else if (toks[i].text == "Result" && i + 1 < n &&
               toks[i + 1].text == "<") {
      int depth = 0;
      for (int k = i + 1; k < n; ++k) {
        if (toks[k].text == "<") ++depth;
        if (toks[k].text == ">" && --depth == 0) {
          j = k + 1;
          break;
        }
      }
    }
    if (j < 0 || j >= n || toks[j].kind != TokenKind::kIdent) continue;
    // Qualified-id: ident (:: ident)* then '('.
    int name = j;
    while (name + 2 < n && toks[name + 1].text == "::" &&
           toks[name + 2].kind == TokenKind::kIdent) {
      name += 2;
    }
    if (name + 1 < n && toks[name + 1].text == "(") {
      out->emplace(toks[name].text);
    }
  }
}

std::vector<Violation> LintSource(std::string_view path,
                                  std::string_view source,
                                  const LintOptions& options) {
  return Linter(path, source, options).Run();
}

std::string FormatViolation(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": " + v.rule + " " +
         v.message;
}

std::string ApplyFixes(std::string_view path, std::string_view source,
                       int* fixes_applied) {
  int applied = 0;
  std::string text(source);
  const LintOptions no_options;
  bool needs_include_fix = false;
  bool needs_guard_fix = false;
  for (const Violation& v : LintSource(path, text, no_options)) {
    if (v.rule == kRuleIncludeOrder) needs_include_fix = true;
    if (v.rule == kRuleHeaderGuard) needs_guard_fix = true;
  }
  std::vector<std::string> lines = SplitLines(text);
  if (needs_include_fix && FixIncludeOrder(path, &lines)) ++applied;
  if (needs_guard_fix) {
    FixHeaderGuard(path, &lines);
    ++applied;
  }
  if (fixes_applied != nullptr) *fixes_applied = applied;
  return applied > 0 ? JoinLines(lines) : text;
}

}  // namespace doduo::lint
