#ifndef DODUO_TOOLS_LINT_PROJECT_MODEL_H_
#define DODUO_TOOLS_LINT_PROJECT_MODEL_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint_engine.h"

// The whole-program intermediate representation behind doduo_lint --all
// (DESIGN §16). Where lint_engine.h sees one translation unit at a time,
// the ProjectModel sees the repository as a graph: every source file with
// its module, token stream, string literals, and resolved include edges.
// The cross-file passes in graph_rules.h (layering DAG, serve-frame
// symmetry, metrics-registry consistency, hot-path allocation audit) run
// over this model.
//
// Like the rule engine, the model is filesystem-free: Build() takes
// (repo-relative path, content) pairs, so tests can assemble synthetic
// repositories in memory.

namespace doduo::lint {

/// One #include directive. `target` indexes ProjectModel::files when the
/// include resolves to a file in the model, else -1 (external header).
struct IncludeEdge {
  int line = 0;
  std::string path;    // as written: "doduo/nn/ops.h", "vector", ...
  bool system = false;  // <...> form
  int target = -1;
};

/// One source file: original + stripped text, tokens, literals, includes.
struct FileModel {
  std::string path;    // repo-relative, '/'-separated
  std::string module;  // "util", "serve", ... or "tools"/"tests"/...
  std::string source;
  std::string stripped;          // comments/strings blanked (lengths kept)
  Suppressions suppressions;     // NOLINT lines
  std::vector<Token> tokens;     // views into `stripped`
  std::vector<StringLiteral> literals;
  std::vector<IncludeEdge> includes;
};

/// The project as a graph. Files are stored in the order given to Build()
/// (the driver sorts paths, so output is deterministic).
struct ProjectModel {
  std::vector<FileModel> files;
  std::map<std::string, int, std::less<>> index_by_path;

  /// Builds the model: classifies modules, lexes every file, parses and
  /// resolves includes.
  static ProjectModel Build(
      std::vector<std::pair<std::string, std::string>> sources);

  /// Index of the file whose path ends with `suffix` (e.g.
  /// "serve/protocol.h"), or -1. When several match, the first wins.
  int FindFileBySuffix(std::string_view suffix) const;
};

/// Module of a repo-relative path: "src/doduo/<m>/..." -> "<m>";
/// "tools/..." -> "tools", "tests/..." -> "tests", "bench/..." -> "bench",
/// "examples/..." -> "examples"; anything else -> "other".
std::string ModuleForPath(std::string_view path);

/// The declared layer DAG (DESIGN §16): module -> rank. A file may include
/// doduo/ headers only from modules of strictly lower rank (or its own
/// module). Top-of-stack scopes (tools, tests, bench, examples) carry
/// kUnconstrainedRank and may include anything.
inline constexpr int kUnconstrainedRank = 1 << 20;
std::map<std::string, int, std::less<>> DefaultLayerRanks();

}  // namespace doduo::lint

#endif  // DODUO_TOOLS_LINT_PROJECT_MODEL_H_
