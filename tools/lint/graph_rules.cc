#include "lint/graph_rules.h"

#include <algorithm>
#include <set>
#include <utility>

namespace doduo::lint {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Levenshtein distance, for "did you mean" metric-name suggestions.
int EditDistance(std::string_view a, std::string_view b) {
  std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

bool IsStatementKeyword(std::string_view t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "catch" || t == "sizeof" || t == "alignof" ||
         t == "alignas" || t == "decltype" || t == "constexpr" ||
         t == "static_assert" || t == "noexcept" || t == "assert";
}

class GraphLinter {
 public:
  GraphLinter(const ProjectModel& model, const GraphRuleOptions& options)
      : model_(model), options_(options) {}

  std::vector<Violation> Run() {
    CheckLayering();
    CheckIncludeCycles();
    CheckFrameSymmetry();
    CheckMetricsRegistry();
    CheckHotPathAllocs();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    violations_.erase(
        std::unique(violations_.begin(), violations_.end(),
                    [](const Violation& a, const Violation& b) {
                      return a.file == b.file && a.line == b.line &&
                             a.rule == b.rule;
                    }),
        violations_.end());
    return std::move(violations_);
  }

 private:
  void Report(int file, int line, std::string_view rule,
              std::string message) {
    const FileModel& f = model_.files[static_cast<size_t>(file)];
    if (IsSuppressed(f.suppressions, line, rule)) return;
    violations_.push_back(
        {f.path, line, std::string(rule), std::move(message)});
  }

  /// True when `name` occurs as an identifier token in file `fi`.
  bool HasIdent(int fi, std::string_view name) const {
    for (const Token& t : model_.files[static_cast<size_t>(fi)].tokens) {
      if (t.kind == TokenKind::kIdent && t.text == name) return true;
    }
    return false;
  }

  // -- layering -------------------------------------------------------------

  /// Module of an include target: the model file's module when resolved,
  /// else derived from a "doduo/<module>/..." spelling, else "".
  std::string IncludeModule(const IncludeEdge& inc) const {
    if (inc.target >= 0) {
      return model_.files[static_cast<size_t>(inc.target)].module;
    }
    if (StartsWith(inc.path, "doduo/")) {
      std::string_view rest = std::string_view(inc.path).substr(6);
      size_t slash = rest.find('/');
      if (slash != std::string_view::npos) {
        return std::string(rest.substr(0, slash));
      }
    }
    return "";
  }

  void CheckLayering() {
    for (int fi = 0; fi < static_cast<int>(model_.files.size()); ++fi) {
      const FileModel& file = model_.files[static_cast<size_t>(fi)];
      auto self = options_.layer_ranks.find(file.module);
      if (self == options_.layer_ranks.end()) {
        if (StartsWith(file.path, "src/doduo/")) {
          Report(fi, 1, kRuleLayering,
                 "module '" + file.module +
                     "' is not in the declared layer DAG; add it to the "
                     "layering table (DESIGN §16) before it grows includes");
        }
        continue;
      }
      const int rank = self->second;
      if (rank == kUnconstrainedRank) continue;  // tools/tests/bench/examples
      for (const IncludeEdge& inc : file.includes) {
        if (inc.system) continue;
        const std::string dep = IncludeModule(inc);
        if (dep.empty() || dep == file.module) continue;
        auto it = options_.layer_ranks.find(dep);
        const int dep_rank = it == options_.layer_ranks.end()
                                 ? kUnconstrainedRank
                                 : it->second;
        if (dep_rank >= rank) {
          Report(fi, inc.line, kRuleLayering,
                 "'" + file.module + "' (layer " + std::to_string(rank) +
                     ") may not include \"" + inc.path + "\" — '" + dep +
                     "' sits at layer " +
                     (dep_rank == kUnconstrainedRank
                          ? std::string("top (tools/tests scope)")
                          : std::to_string(dep_rank)) +
                     "; the DAG is util → text → table → {nn,eval,synth} → "
                     "{transformer,cluster} → core → "
                     "{serve,analysis,baselines,probe} → experiments → "
                     "tools/tests");
        }
      }
    }
  }

  // -- include-cycle --------------------------------------------------------

  void CheckIncludeCycles() {
    const int n = static_cast<int>(model_.files.size());
    // Colors: 0 = unvisited, 1 = on the DFS stack, 2 = done.
    std::vector<int> color(static_cast<size_t>(n), 0);
    std::vector<int> stack;
    std::set<std::vector<int>> reported;  // canonicalized cycles
    // Iterative DFS so a deep include chain cannot overflow the C stack.
    struct DfsFrame {
      int file;
      size_t edge = 0;
    };
    for (int start = 0; start < n; ++start) {
      if (color[static_cast<size_t>(start)] != 0) continue;
      std::vector<DfsFrame> frames{{start}};
      color[static_cast<size_t>(start)] = 1;
      stack.push_back(start);
      while (!frames.empty()) {
        DfsFrame& top = frames.back();
        const FileModel& file = model_.files[static_cast<size_t>(top.file)];
        if (top.edge < file.includes.size()) {
          const IncludeEdge& inc = file.includes[top.edge++];
          if (inc.target < 0) continue;
          const int next = inc.target;
          if (color[static_cast<size_t>(next)] == 0) {
            color[static_cast<size_t>(next)] = 1;
            stack.push_back(next);
            frames.push_back({next});
          } else if (color[static_cast<size_t>(next)] == 1) {
            ReportCycle(stack, next, top.file, inc.line, &reported);
          }
        } else {
          color[static_cast<size_t>(top.file)] = 2;
          stack.pop_back();
          frames.pop_back();
        }
      }
    }
  }

  void ReportCycle(const std::vector<int>& stack, int back_to, int from,
                   int line, std::set<std::vector<int>>* reported) {
    // Extract the cycle [back_to .. stack top], canonicalize by rotating
    // the smallest index first so each cycle reports exactly once.
    auto it = std::find(stack.begin(), stack.end(), back_to);
    std::vector<int> cycle(it, stack.end());
    std::vector<int> canon = cycle;
    auto min_it = std::min_element(canon.begin(), canon.end());
    std::rotate(canon.begin(), min_it, canon.end());
    if (!reported->insert(canon).second) return;
    std::string path_list;
    for (int fi : cycle) {
      path_list += model_.files[static_cast<size_t>(fi)].path;
      path_list += " -> ";
    }
    path_list += model_.files[static_cast<size_t>(back_to)].path;
    Report(from, line, kRuleIncludeCycle,
           "include cycle: " + path_list +
               "; break it with a forward declaration or by moving the "
               "shared type down a layer");
  }

  // -- frame-symmetry -------------------------------------------------------

  struct Enumerator {
    std::string name;
    long value = 0;
    int line = 0;
  };

  /// Parses `enum class <frame_enum>` enumerators out of the protocol
  /// header's token stream. Returns false when the enum is absent.
  bool ParseFrameEnum(int fi, std::vector<Enumerator>* out,
                      int* enum_line) const {
    const auto& toks = model_.files[static_cast<size_t>(fi)].tokens;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i + 2 < n; ++i) {
      if (toks[i].text != "enum" || toks[i + 1].text != "class" ||
          toks[i + 2].text != options_.frame_enum) {
        continue;
      }
      *enum_line = toks[i].line;
      int j = i + 3;
      while (j < n && toks[j].text != "{" && toks[j].text != ";") ++j;
      if (j >= n || toks[j].text != "{") return false;
      ++j;
      long next_value = 0;
      while (j < n && toks[j].text != "}") {
        if (toks[j].kind != TokenKind::kIdent) {
          ++j;
          continue;
        }
        Enumerator e;
        e.name = std::string(toks[j].text);
        e.line = toks[j].line;
        if (j + 2 < n && toks[j + 1].text == "=" &&
            toks[j + 2].kind == TokenKind::kNumber) {
          e.value = std::strtol(std::string(toks[j + 2].text).c_str(),
                                nullptr, 0);
          j += 3;
        } else {
          e.value = next_value;
          ++j;
        }
        next_value = e.value + 1;
        out->push_back(std::move(e));
        while (j < n && toks[j].text != "," && toks[j].text != "}") ++j;
        if (j < n && toks[j].text == ",") ++j;
      }
      return true;
    }
    return false;
  }

  void CheckFrameSymmetry() {
    const int proto = model_.FindFileBySuffix(options_.protocol_header_suffix);
    if (proto < 0) {
      for (int fi = 0; fi < static_cast<int>(model_.files.size()); ++fi) {
        if (model_.files[static_cast<size_t>(fi)].module == "serve") {
          Report(fi, 1, kRuleFrameSymmetry,
                 "serve module present but no " +
                     options_.protocol_header_suffix +
                     " in the project model; the wire contract has no "
                     "checkable home");
          return;
        }
      }
      return;
    }
    std::vector<Enumerator> frames;
    int enum_line = 1;
    if (!ParseFrameEnum(proto, &frames, &enum_line)) {
      Report(proto, 1, kRuleFrameSymmetry,
             "no 'enum class " + options_.frame_enum + "' found in " +
                 options_.protocol_header_suffix);
      return;
    }

    // Ids must be unique and dense: IsKnownFrameType's range check is only
    // valid when every value in [min, max] names a real frame.
    std::map<long, const Enumerator*> by_value;
    for (const Enumerator& e : frames) {
      auto [it, inserted] = by_value.emplace(e.value, &e);
      if (!inserted) {
        Report(proto, e.line, kRuleFrameSymmetry,
               "frame id " + std::to_string(e.value) + " of " + e.name +
                   " collides with " + it->second->name);
      }
    }
    if (!by_value.empty()) {
      const long lo = by_value.begin()->first;
      const long hi = by_value.rbegin()->first;
      std::string holes;
      for (long v = lo; v <= hi; ++v) {
        if (by_value.count(v) == 0) {
          if (!holes.empty()) holes += ", ";
          holes += std::to_string(v);
        }
      }
      if (!holes.empty()) {
        Report(proto, enum_line, kRuleFrameSymmetry,
               "frame ids are not dense: id(s) " + holes +
                   " are unused but IsKnownFrameType's range check accepts "
                   "them as valid");
      }
    }

    // Every kFooRequest needs a kFooResponse (responses may stand alone:
    // kErrorResponse answers any frame).
    std::set<std::string> names;
    for (const Enumerator& e : frames) names.insert(e.name);
    for (const Enumerator& e : frames) {
      constexpr std::string_view kSuffix = "Request";
      if (EndsWith(e.name, kSuffix)) {
        const std::string expected =
            e.name.substr(0, e.name.size() - kSuffix.size()) + "Response";
        if (names.count(expected) == 0) {
          Report(proto, e.line, kRuleFrameSymmetry,
                 "frame " + e.name + " (id " + std::to_string(e.value) +
                     ") has no matching " + expected + " enumerator");
        }
      }
    }

    // Both sides of the wire must know every frame: the client encodes and
    // expects it, the server decodes and answers it. A frame missing from
    // either side is silently dead (or worse, a connection-fatal unknown
    // type for an up-level peer).
    const int enc = model_.FindFileBySuffix(options_.encode_file_suffix);
    const int dec = model_.FindFileBySuffix(options_.decode_file_suffix);
    for (const auto& [side, fi] :
         {std::pair<std::string_view, int>{"encode", enc},
          std::pair<std::string_view, int>{"decode", dec}}) {
      if (fi < 0) {
        Report(proto, enum_line, kRuleFrameSymmetry,
               "no " +
                   (side == "encode" ? options_.encode_file_suffix
                                     : options_.decode_file_suffix) +
                   " in the project model to carry the " + std::string(side) +
                   " side of the frame protocol");
        continue;
      }
      for (const Enumerator& e : frames) {
        if (!HasIdent(fi, e.name)) {
          Report(proto, e.line, kRuleFrameSymmetry,
                 "frame " + e.name + " (id " + std::to_string(e.value) +
                     ") is never referenced in " +
                     model_.files[static_cast<size_t>(fi)].path +
                     "; a frame without a " + std::string(side) +
                     "-side is dead on the wire");
        }
      }
    }

    // Every frame id must be exercised by tests — additive frames (8/9)
    // must not ship without wire-level coverage.
    for (const Enumerator& e : frames) {
      bool in_tests = false;
      for (int fi = 0; fi < static_cast<int>(model_.files.size()) && !in_tests;
           ++fi) {
        if (StartsWith(model_.files[static_cast<size_t>(fi)].path,
                       options_.test_dir_prefix) &&
            HasIdent(fi, e.name)) {
          in_tests = true;
        }
      }
      if (!in_tests) {
        Report(proto, e.line, kRuleFrameSymmetry,
               "frame " + e.name + " (id " + std::to_string(e.value) +
                   ") has no test reference under " +
                   options_.test_dir_prefix +
                   "; at minimum the wire fuzz suite must construct it");
      }
    }

    // Payload codecs come in Encode/Decode pairs, and every decoder is
    // fuzzed (the checkpoint-loader discipline extended to the wire).
    std::map<std::string, int> encoders, decoders;  // base name -> line
    for (const Token& t :
         model_.files[static_cast<size_t>(proto)].tokens) {
      if (t.kind != TokenKind::kIdent) continue;
      if (!EndsWith(t.text, "Payload")) continue;
      if (StartsWith(t.text, "Encode")) {
        encoders.emplace(std::string(t.text.substr(6)), t.line);
      } else if (StartsWith(t.text, "Decode")) {
        decoders.emplace(std::string(t.text.substr(6)), t.line);
      }
    }
    for (const auto& [base, line] : encoders) {
      if (decoders.count(base) == 0) {
        Report(proto, line, kRuleFrameSymmetry,
               "payload codec Encode" + base + " has no Decode" + base +
                   " counterpart; a frame that can be sent but not parsed "
                   "loses its receive side");
      }
    }
    for (const auto& [base, line] : decoders) {
      if (encoders.count(base) == 0) {
        Report(proto, line, kRuleFrameSymmetry,
               "payload codec Decode" + base + " has no Encode" + base +
                   " counterpart; a frame that can be parsed but not built "
                   "loses its send side");
      }
    }
    std::vector<std::string> fuzz_targets;
    for (const auto& [base, line] : decoders) {
      fuzz_targets.push_back("Decode" + base);
    }
    if (HasIdent(proto, "FrameDecoder")) {
      fuzz_targets.emplace_back("FrameDecoder");
    }
    for (const std::string& target : fuzz_targets) {
      bool fuzzed = false;
      for (int fi = 0; fi < static_cast<int>(model_.files.size()) && !fuzzed;
           ++fi) {
        const FileModel& f = model_.files[static_cast<size_t>(fi)];
        if (StartsWith(f.path, options_.test_dir_prefix) &&
            f.path.find(options_.fuzz_marker) != std::string::npos &&
            HasIdent(fi, target)) {
          fuzzed = true;
        }
      }
      if (!fuzzed) {
        int line = enum_line;
        auto it = decoders.find(target.size() > 6 ? target.substr(6) : "");
        if (it != decoders.end()) line = it->second;
        Report(proto, line, kRuleFrameSymmetry,
               target +
                   " is not exercised by any fuzz test (tests/**/*" +
                   options_.fuzz_marker +
                   "*); every wire decoder chews untrusted bytes");
      }
    }
  }

  // -- metrics-registry -----------------------------------------------------

  void CheckMetricsRegistry() {
    struct Use {
      std::string name;
      int file;
      int line;
    };
    std::vector<Use> uses;
    for (int fi = 0; fi < static_cast<int>(model_.files.size()); ++fi) {
      const FileModel& f = model_.files[static_cast<size_t>(fi)];
      // The metrics subsystem itself (registry lookup implementation) and
      // the registry header are not call sites.
      if (EndsWith(f.path, "util/metrics.h") ||
          EndsWith(f.path, "util/metrics.cc") ||
          EndsWith(f.path, options_.registry_header_suffix)) {
        continue;
      }
      const int n = static_cast<int>(f.tokens.size());
      for (int i = 0; i + 1 < n; ++i) {
        const Token& t = f.tokens[i];
        if (t.kind != TokenKind::kIdent ||
            (t.text != "GetCounter" && t.text != "GetHistogram")) {
          continue;
        }
        if (f.tokens[i + 1].text != "(") continue;
        const int close = MatchParen(f.tokens, i + 1);
        if (close < 0) continue;
        // The argument literal sits between the parens in the original
        // text (the stripper blanked it out of the token stream).
        for (const StringLiteral& lit : f.literals) {
          if (lit.offset > f.tokens[static_cast<size_t>(i) + 1].offset &&
              lit.offset < f.tokens[static_cast<size_t>(close)].offset) {
            uses.push_back({lit.text, fi, t.line});
            break;
          }
        }
      }
    }
    const int reg = model_.FindFileBySuffix(options_.registry_header_suffix);
    if (reg < 0) {
      // A tree with no metrics use needs no registry; one with uses does.
      if (!uses.empty()) {
        Report(uses[0].file, uses[0].line, kRuleMetricsRegistry,
               "metric names are used but the model has no " +
                   options_.registry_header_suffix +
                   " registry header (DESIGN §16)");
      }
      return;
    }
    std::map<std::string, int> registered;  // name -> registry line
    for (const StringLiteral& lit :
         model_.files[static_cast<size_t>(reg)].literals) {
      registered.emplace(lit.text, lit.line);
    }

    std::set<std::string> used_names;
    for (const Use& use : uses) {
      bool exempt = false;
      for (const std::string& prefix : options_.metric_exempt_prefixes) {
        if (StartsWith(use.name, prefix)) exempt = true;
      }
      if (exempt) continue;
      used_names.insert(use.name);
      if (registered.count(use.name) > 0) continue;
      // Typo'd near-duplicate? Suggest the closest registered name.
      std::string best;
      int best_dist = 4;  // suggest only within edit distance 3
      for (const auto& [name, line] : registered) {
        const int d = EditDistance(use.name, name);
        if (d < best_dist) {
          best_dist = d;
          best = name;
        }
      }
      Report(use.file, use.line, kRuleMetricsRegistry,
             "metric name \"" + use.name + "\" is not in " +
                 options_.registry_header_suffix +
                 (best.empty() ? "; register it there (one header owns "
                                 "every metric name)"
                               : "; did you mean \"" + best + "\"?"));
    }
    for (const auto& [name, line] : registered) {
      if (used_names.count(name) == 0) {
        Report(reg, line, kRuleMetricsRegistry,
               "registered metric \"" + name +
                   "\" has no GetCounter/GetHistogram call site; remove it "
                   "or wire it up");
      }
    }
  }

  // -- hot-path-alloc -------------------------------------------------------

  struct FunctionDef {
    std::string name;
    int file;
    int body_begin;  // token index of '{'
    int body_end;    // token index of matching '}'
    int line;
  };

  bool InHotPathModules(const FileModel& f) const {
    for (const std::string& m : options_.hot_path_modules) {
      if (f.module == m) return true;
    }
    return false;
  }

  bool IsExemptPath(const FileModel& f) const {
    for (const std::string& p : options_.hot_path_exempt_paths) {
      if (f.path.find(p) != std::string::npos) return true;
    }
    return false;
  }

  /// Collects function definitions (name + body token range) from one
  /// file's token stream. Deliberately approximate: constructors (their
  /// init lists defeat shallow parsing) and trailing-return-type functions
  /// are skipped — neither sits on the encoder forward path.
  void CollectFunctionDefs(int fi, std::vector<FunctionDef>* out) const {
    const auto& toks = model_.files[static_cast<size_t>(fi)].tokens;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i + 1 < n; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdent || IsStatementKeyword(t.text)) continue;
      if (toks[i + 1].text != "(") continue;
      const int close = MatchParen(toks, i + 1);
      if (close < 0 || close + 1 >= n) continue;
      int open = close + 1;
      while (open < n &&
             (toks[open].text == "const" || toks[open].text == "noexcept" ||
              toks[open].text == "override" || toks[open].text == "final")) {
        ++open;
      }
      if (open >= n || toks[open].text != "{") continue;
      // `name(...) {` directly after another ident could still be a
      // declaration with a braced initializer (`int x(1); {`) — the paren
      // close is followed by `{` only for definitions and compound
      // statements, and keywords were excluded above.
      int depth = 0;
      int end = -1;
      for (int j = open; j < n; ++j) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) {
          end = j;
          break;
        }
      }
      if (end < 0) continue;
      out->push_back({std::string(t.text), fi, open, end, t.line});
    }
  }

  void CheckHotPathAllocs() {
    // Index every function definition in the hot-path modules.
    std::vector<FunctionDef> defs;
    for (int fi = 0; fi < static_cast<int>(model_.files.size()); ++fi) {
      if (InHotPathModules(model_.files[static_cast<size_t>(fi)])) {
        CollectFunctionDefs(fi, &defs);
      }
    }
    if (defs.empty()) return;
    std::map<std::string, std::vector<int>, std::less<>> defs_by_name;
    for (int d = 0; d < static_cast<int>(defs.size()); ++d) {
      defs_by_name[defs[static_cast<size_t>(d)].name].push_back(d);
    }

    // Seed the worklist with the roots (Encoder::Forward by default) and
    // walk the name-resolved call graph. Name resolution over-approximates
    // (every definition of a called name is reachable), which errs toward
    // auditing more code — the safe direction for a zero-alloc contract.
    std::vector<int> worklist;
    std::vector<int> parent(defs.size(), -2);  // -2 unreached, -1 root
    for (const auto& root : options_.hot_path_roots) {
      for (int d = 0; d < static_cast<int>(defs.size()); ++d) {
        const FunctionDef& def = defs[static_cast<size_t>(d)];
        if (def.name == root.function &&
            model_.files[static_cast<size_t>(def.file)].path.find(
                root.file_contains) != std::string::npos) {
          if (parent[static_cast<size_t>(d)] == -2) {
            parent[static_cast<size_t>(d)] = -1;
            worklist.push_back(d);
          }
        }
      }
    }
    for (size_t w = 0; w < worklist.size(); ++w) {
      const int d = worklist[w];
      const FunctionDef& def = defs[static_cast<size_t>(d)];
      const auto& toks =
          model_.files[static_cast<size_t>(def.file)].tokens;
      for (int i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdent || IsStatementKeyword(t.text)) {
          continue;
        }
        if (i + 1 >= static_cast<int>(toks.size()) ||
            toks[i + 1].text != "(") {
          continue;
        }
        auto it = defs_by_name.find(t.text);
        if (it == defs_by_name.end()) continue;
        for (int callee : it->second) {
          if (parent[static_cast<size_t>(callee)] == -2) {
            parent[static_cast<size_t>(callee)] = d;
            worklist.push_back(callee);
          }
        }
      }
    }

    // Audit every reachable body for allocation and growing-container
    // calls. nn::Tensor / nn::Workspace are exempt: they ARE the audited
    // allocation choke points (ResizeUninitialized reuses capacity;
    // DODUO_COUNT_ALLOCS counts the rest at runtime).
    static constexpr std::string_view kAllocCalls[] = {
        "make_unique", "make_shared", "malloc", "calloc", "realloc"};
    static constexpr std::string_view kGrowthCalls[] = {
        "push_back", "emplace_back", "emplace", "resize",
        "reserve",   "insert",       "assign",  "append"};
    for (int d = 0; d < static_cast<int>(defs.size()); ++d) {
      if (parent[static_cast<size_t>(d)] == -2) continue;
      const FunctionDef& def = defs[static_cast<size_t>(d)];
      const FileModel& f = model_.files[static_cast<size_t>(def.file)];
      if (IsExemptPath(f)) continue;
      const auto& toks = f.tokens;
      for (int i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdent) continue;
        std::string_view what;
        if (t.text == "new") {
          what = "new";
        } else {
          const bool next_call =
              i + 1 < static_cast<int>(toks.size()) &&
              (toks[i + 1].text == "(" || toks[i + 1].text == "<");
          if (next_call) {
            for (std::string_view name : kAllocCalls) {
              if (t.text == name) what = name;
            }
            const bool member =
                i > 0 &&
                (toks[i - 1].text == "." || toks[i - 1].text == "->");
            if (member && toks[i + 1].text == "(") {
              for (std::string_view name : kGrowthCalls) {
                if (t.text == name) what = name;
              }
            }
          }
        }
        if (what.empty()) continue;
        Report(def.file, t.line, kRuleHotPathAlloc,
               "'" + std::string(what) + "' in '" + def.name +
                   "', reachable from the encoder forward path (" +
                   CallChain(defs, parent, d) +
                   "); the steady-state hot path is zero-alloc (DESIGN §9) "
                   "— use nn::Workspace arenas or "
                   "Tensor::ResizeUninitialized");
      }
    }
  }

  std::string CallChain(const std::vector<FunctionDef>& defs,
                        const std::vector<int>& parent, int d) const {
    std::vector<std::string> names;
    for (int cur = d; cur >= 0 && names.size() < 8;
         cur = parent[static_cast<size_t>(cur)]) {
      names.push_back(defs[static_cast<size_t>(cur)].name);
    }
    std::string chain;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      if (!chain.empty()) chain += " -> ";
      chain += *it;
    }
    return chain;
  }

  const ProjectModel& model_;
  const GraphRuleOptions& options_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> RunGraphRules(const ProjectModel& model,
                                     const GraphRuleOptions& options) {
  return GraphLinter(model, options).Run();
}

}  // namespace doduo::lint
