#ifndef DODUO_TOOLS_LINT_LINT_ENGINE_H_
#define DODUO_TOOLS_LINT_LINT_ENGINE_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

// The rule engine behind doduo_lint (DESIGN §11): a dependency-free,
// token/line-based checker for project invariants that the compiler cannot
// see (determinism contract, workspace-arena discipline, cached-metric
// pattern) or that it only enforces with our help ([[nodiscard]] Status).
// It is deliberately not a real C++ parser: every rule is written so that a
// shallow token scan — comment- and string-literal-aware — has no false
// positives on this codebase, and the `// NOLINT(rule-id)` escape hatch
// covers the rest.
//
// The engine lives in its own small library (no doduo_util dependency) so
// tests/tools/doduo_lint_test.cc can feed crafted snippets straight through
// LintSource without touching the filesystem.

namespace doduo::lint {

/// One rule violation. `line` is 1-based.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Engine configuration. `status_functions` is the set of function names
/// known to return util::Status / util::Result<T>; the driver populates it
/// by scanning every header with CollectStatusFunctions.
struct LintOptions {
  std::set<std::string, std::less<>> status_functions;
};

// Rule identifiers (the `rule-id` printed in diagnostics and accepted by
// `// NOLINT(rule-id)`). See DESIGN §11 for each rule's rationale.
inline constexpr char kRuleDiscardedStatus[] = "discarded-status";
inline constexpr char kRuleNoAbort[] = "no-abort";
inline constexpr char kRuleNoRawRandom[] = "no-raw-random";
inline constexpr char kRuleNoNakedNew[] = "no-naked-new";
inline constexpr char kRuleHeaderGuard[] = "header-guard";
inline constexpr char kRuleIncludeOrder[] = "include-order";
inline constexpr char kRuleMetricsInLoop[] = "metrics-in-loop";
inline constexpr char kRuleServeRawIo[] = "serve-raw-io";
inline constexpr char kRuleRawMutex[] = "raw-mutex";
inline constexpr char kRuleDetachedThread[] = "detached-thread";
inline constexpr char kRuleSleepSync[] = "sleep-sync";
inline constexpr char kRuleQuantNoFloat[] = "quant-no-float-in-int8-kernel";

/// Scans C++ source (typically a header) for function declarations whose
/// return type is util::Status or util::Result<T> and inserts their names
/// into `out`.
void CollectStatusFunctions(std::string_view source,
                            std::set<std::string, std::less<>>* out);

/// Lints one translation unit. `path` should be repo-relative (it is both
/// the reported location and the input to path-scoped rules such as
/// no-naked-new, which only applies under nn/ and transformer/).
std::vector<Violation> LintSource(std::string_view path,
                                  std::string_view source,
                                  const LintOptions& options);

/// Formats a violation as "file:line: rule-id message".
std::string FormatViolation(const Violation& v);

}  // namespace doduo::lint

#endif  // DODUO_TOOLS_LINT_LINT_ENGINE_H_
