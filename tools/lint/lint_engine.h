#ifndef DODUO_TOOLS_LINT_LINT_ENGINE_H_
#define DODUO_TOOLS_LINT_LINT_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

// The rule engine behind doduo_lint (DESIGN §11, §16): a dependency-free,
// token/line-based checker for project invariants that the compiler cannot
// see (determinism contract, workspace-arena discipline, cached-metric
// pattern) or that it only enforces with our help ([[nodiscard]] Status).
// It is deliberately not a real C++ parser: every rule is written so that a
// shallow token scan — comment- and string-literal-aware — has no false
// positives on this codebase, and the `// NOLINT(rule-id)` escape hatch
// covers the rest.
//
// The engine lives in its own small library (no doduo_util dependency) so
// tests/tools/doduo_lint_test.cc can feed crafted snippets straight through
// LintSource without touching the filesystem. The lexer (StripSource /
// Tokenize) is exposed here because the whole-program layer
// (project_model.h, graph_rules.h) builds its per-file token streams with
// the exact same preparation — one lexer, one set of comment/string/NOLINT
// semantics.

namespace doduo::lint {

/// One rule violation. `line` is 1-based.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Engine configuration. `status_functions` is the set of function names
/// known to return util::Status / util::Result<T>; the driver populates it
/// by scanning every header with CollectStatusFunctions.
struct LintOptions {
  std::set<std::string, std::less<>> status_functions;
};

// Rule identifiers (the `rule-id` printed in diagnostics and accepted by
// `// NOLINT(rule-id)`). See DESIGN §11 for each per-file rule's rationale
// and DESIGN §16 for the whole-program rules in graph_rules.h.
inline constexpr char kRuleDiscardedStatus[] = "discarded-status";
inline constexpr char kRuleNoAbort[] = "no-abort";
inline constexpr char kRuleNoRawRandom[] = "no-raw-random";
inline constexpr char kRuleNoNakedNew[] = "no-naked-new";
inline constexpr char kRuleHeaderGuard[] = "header-guard";
inline constexpr char kRuleIncludeOrder[] = "include-order";
inline constexpr char kRuleMetricsInLoop[] = "metrics-in-loop";
inline constexpr char kRuleServeRawIo[] = "serve-raw-io";
inline constexpr char kRuleRawMutex[] = "raw-mutex";
inline constexpr char kRuleDetachedThread[] = "detached-thread";
inline constexpr char kRuleSleepSync[] = "sleep-sync";
inline constexpr char kRuleQuantNoFloat[] = "quant-no-float-in-int8-kernel";

// ---------------------------------------------------------------------------
// Lexer (shared with the whole-program layer).
// ---------------------------------------------------------------------------

/// Per-line suppressions: line -> rule ids silenced there. An empty set
/// means every rule is silenced on that line (bare `// NOLINT`).
using Suppressions = std::map<int, std::set<std::string, std::less<>>>;

/// Replaces comment bodies and string/char-literal contents with spaces
/// (newlines kept, so offsets and line numbers survive), collecting NOLINT
/// annotations along the way. Handles //, /* */, "...", '...', and
/// R"delim(...)delim" raw strings.
std::string StripSource(std::string_view src, Suppressions* suppressions);

/// True when `rule` is silenced on `line` (bare NOLINT or a matching
/// rule list).
bool IsSuppressed(const Suppressions& suppressions, int line,
                  std::string_view rule);

enum class TokenKind { kIdent, kNumber, kPunct };

/// One token of stripped source. `text` views into the stripped string the
/// token was produced from; `offset` is the byte offset there (identical to
/// the offset in the original source, since stripping is length-preserving).
struct Token {
  std::string_view text;
  TokenKind kind;
  int line;
  size_t offset;
};

/// Tokenizes stripped source. Preprocessor directive lines (and their
/// backslash continuations) are excluded: directives are not statements,
/// and the include rules parse them line-wise instead.
std::vector<Token> Tokenize(std::string_view stripped);

/// Index of the token closing the paren opened at `open` (tokens[open] must
/// be "("), or -1 when unbalanced.
int MatchParen(const std::vector<Token>& toks, int open);

/// One string literal of the original source (content without quotes).
struct StringLiteral {
  std::string text;
  int line = 0;
  size_t offset = 0;  // byte offset of the opening quote
};

/// Collects every "..." string literal (comment-aware; raw strings
/// included, char literals excluded) from the original source.
std::vector<StringLiteral> CollectStringLiterals(std::string_view source);

// ---------------------------------------------------------------------------
// Per-file linting.
// ---------------------------------------------------------------------------

/// Scans C++ source (typically a header) for function declarations whose
/// return type is util::Status or util::Result<T> and inserts their names
/// into `out`.
void CollectStatusFunctions(std::string_view source,
                            std::set<std::string, std::less<>>* out);

/// Lints one translation unit. `path` should be repo-relative (it is both
/// the reported location and the input to path-scoped rules such as
/// no-naked-new, which only applies under nn/ and transformer/). Reports
/// are deduplicated: one (file, line, rule) triple appears at most once.
std::vector<Violation> LintSource(std::string_view path,
                                  std::string_view source,
                                  const LintOptions& options);

/// Formats a violation as "file:line: rule-id message".
std::string FormatViolation(const Violation& v);

// ---------------------------------------------------------------------------
// Mechanical fixes (`doduo_lint --fix`).
// ---------------------------------------------------------------------------

/// Applies the mechanical fixes — include-order (regroups the include block
/// into own header, <system>, "project") and header-guard (inserts an
/// #ifndef/#define/#endif guard derived from the path) — and returns the
/// fixed source. `*fixes_applied` (optional) counts the fixes. Idempotent:
/// ApplyFixes(ApplyFixes(s)) == ApplyFixes(s). Sources whose include block
/// is interleaved with conditional compilation or code are returned
/// unchanged (those need a human).
std::string ApplyFixes(std::string_view path, std::string_view source,
                       int* fixes_applied);

}  // namespace doduo::lint

#endif  // DODUO_TOOLS_LINT_LINT_ENGINE_H_
