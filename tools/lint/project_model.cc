#include "lint/project_model.h"

#include <utility>

namespace doduo::lint {

namespace {

/// Parses the #include directives of `source` line-wise over the ORIGINAL
/// text (the stripper blanks the quote form's path).
std::vector<IncludeEdge> ParseIncludes(std::string_view source) {
  std::vector<IncludeEdge> includes;
  int line = 1;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t end = source.find('\n', pos);
    if (end == std::string_view::npos) end = source.size();
    std::string_view text = source.substr(pos, end - pos);
    size_t hash = text.find_first_not_of(" \t");
    if (hash != std::string_view::npos && text[hash] == '#') {
      size_t kw = text.find_first_not_of(" \t", hash + 1);
      if (kw != std::string_view::npos &&
          text.compare(kw, 7, "include") == 0) {
        size_t open = text.find_first_not_of(" \t", kw + 7);
        if (open != std::string_view::npos &&
            (text[open] == '<' || text[open] == '"')) {
          const bool system = text[open] == '<';
          const char close_ch = system ? '>' : '"';
          size_t close = text.find(close_ch, open + 1);
          if (close != std::string_view::npos) {
            includes.push_back(
                {line, std::string(text.substr(open + 1, close - open - 1)),
                 system, -1});
          }
        }
      }
    }
    if (end == source.size()) break;
    pos = end + 1;
    ++line;
  }
  return includes;
}

}  // namespace

std::string ModuleForPath(std::string_view path) {
  constexpr std::string_view kSrcPrefix = "src/doduo/";
  if (path.substr(0, kSrcPrefix.size()) == kSrcPrefix) {
    std::string_view rest = path.substr(kSrcPrefix.size());
    size_t slash = rest.find('/');
    if (slash != std::string_view::npos) {
      return std::string(rest.substr(0, slash));
    }
    return "src";  // a file directly under src/doduo/
  }
  size_t slash = path.find('/');
  std::string_view scope =
      slash == std::string_view::npos ? path : path.substr(0, slash);
  if (scope == "tools" || scope == "tests" || scope == "bench" ||
      scope == "examples") {
    return std::string(scope);
  }
  return "other";
}

std::map<std::string, int, std::less<>> DefaultLayerRanks() {
  // The doduo layer DAG (DESIGN §16). Within a rank, cross-module includes
  // are forbidden — only strictly-lower ranks are visible — so two modules
  // share a rank only when neither may see the other.
  return {
      {"util", 0},
      {"text", 1},
      {"table", 2},
      {"nn", 3},   {"eval", 3},      {"synth", 3},
      {"transformer", 4},            {"cluster", 4},
      {"core", 5},
      {"analysis", 6}, {"baselines", 6}, {"probe", 6}, {"serve", 6},
      {"experiments", 7},
      {"tools", kUnconstrainedRank},
      {"tests", kUnconstrainedRank},
      {"bench", kUnconstrainedRank},
      {"examples", kUnconstrainedRank},
  };
}

ProjectModel ProjectModel::Build(
    std::vector<std::pair<std::string, std::string>> sources) {
  ProjectModel model;
  model.files.reserve(sources.size());
  for (auto& [path, content] : sources) {
    FileModel file;
    file.path = path;
    file.module = ModuleForPath(path);
    file.source = std::move(content);
    file.stripped = StripSource(file.source, &file.suppressions);
    file.tokens = Tokenize(file.stripped);
    file.literals = CollectStringLiterals(file.source);
    file.includes = ParseIncludes(file.source);
    model.index_by_path.emplace(file.path,
                                static_cast<int>(model.files.size()));
    model.files.push_back(std::move(file));
  }
  // Resolve quote-form includes against the model. Project headers are
  // written relative to one of the include roots (src/ for doduo/...,
  // tools/ for lint/..., tests/ for fixtures), so try each root.
  for (FileModel& file : model.files) {
    for (IncludeEdge& inc : file.includes) {
      if (inc.system) continue;
      for (const std::string_view root :
           {std::string_view(""), std::string_view("src/"),
            std::string_view("tools/"), std::string_view("tests/")}) {
        auto it = model.index_by_path.find(std::string(root) + inc.path);
        if (it != model.index_by_path.end()) {
          inc.target = it->second;
          break;
        }
      }
    }
  }
  return model;
}

int ProjectModel::FindFileBySuffix(std::string_view suffix) const {
  for (int i = 0; i < static_cast<int>(files.size()); ++i) {
    const std::string& p = files[i].path;
    if (p.size() >= suffix.size() &&
        std::string_view(p).substr(p.size() - suffix.size()) == suffix) {
      return i;
    }
  }
  return -1;
}

}  // namespace doduo::lint
