// doduo_convert — checkpoint migration between model-directory formats
// (DESIGN §14).
//
//   doduo_convert <src_dir> <dst_dir> [--int8] [--v1]
//
// Loads a saved model directory (any checkpoint version; the v1 loader
// applies the legacy packed-QKV shim) and re-saves it to <dst_dir>:
// by default as a v2 mmap-able checkpoint, with --int8 storing Linear
// weights quantized to int8 + per-channel scales (~4x smaller), or with
// --v1 as the legacy stream format (downgrade path). Vocabularies and
// config are copied along, so the destination is a complete, loadable
// model directory.

#include <cstdio>
#include <cstring>
#include <string>

#include "doduo/core/model_io.h"

namespace {

const char* kUsage = "usage: doduo_convert <src_dir> <dst_dir> [--int8] [--v1]\n";

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string src, dst;
  doduo::core::SaveModelOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--int8") == 0) {
      options.quant_int8 = true;
    } else if (std::strcmp(argv[i], "--v1") == 0) {
      options.checkpoint_version = 1;
    } else if (src.empty()) {
      src = argv[i];
    } else if (dst.empty()) {
      dst = argv[i];
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (src.empty() || dst.empty() ||
      (options.quant_int8 && options.checkpoint_version == 1)) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  auto loaded = doduo::core::LoadModelDir(src);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  doduo::core::LoadedModel& m = *loaded.value();

  if (doduo::util::Status saved =
          doduo::core::SaveModelDir(dst, m.model.get(), m.vocab, m.types,
                                    m.relations, options);
      !saved.ok()) {
    return Fail(saved.ToString());
  }
  std::printf("doduo_convert: %s -> %s (v%d%s)\n", src.c_str(), dst.c_str(),
              options.checkpoint_version, options.quant_int8 ? ", int8" : "");
  return 0;
}
