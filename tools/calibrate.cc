// Development tool: trains one DODUO variant on one benchmark and prints
// validation-curve + test scores. Used to calibrate fine-tuning
// hyperparameters; not part of the experiment suite.
//
// Knobs via environment variables:
//   DODUO_MODE=wikitable|viznet   DODUO_TABLES=600
//   DODUO_FT_EPOCHS / DODUO_FT_LR / DODUO_FT_BATCH
//   DODUO_VARIANT=doduo|turl|scol|meta|rand

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;
  using doduo::util::GetEnvInt;
  using doduo::util::GetEnvString;

  EnvOptions options;
  options.mode = GetEnvString("DODUO_MODE", "wikitable") == "viznet"
                     ? BenchmarkMode::kVizNet
                     : BenchmarkMode::kWikiTable;
  options.num_tables = static_cast<int>(GetEnvInt("DODUO_TABLES", 600));
  options.num_layers =
      static_cast<int>(GetEnvInt("DODUO_LAYERS", options.num_layers));
  options.hidden_dim =
      static_cast<int>(GetEnvInt("DODUO_DIM", options.hidden_dim));
  options.ffn_dim = 4 * options.hidden_dim;
  options.pretrain_epochs =
      static_cast<int>(GetEnvInt("DODUO_PT_EPOCHS", options.pretrain_epochs));
  options.corpus_list_mentions = static_cast<int>(
      GetEnvInt("DODUO_LIST_MENTIONS", options.corpus_list_mentions));
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  DoduoVariant variant;
  const std::string name = GetEnvString("DODUO_VARIANT", "doduo");
  if (name == "sherlock" || name == "sato") {
    const auto result = name == "sherlock" ? RunSherlock(&env) : RunSato(&env);
    std::printf("test: %s micro F1 %.4f macro F1 %.4f\n", name.c_str(),
                result.micro.f1, result.macro.f1);
    return 0;
  }
  if (name == "turl") variant.turl_visibility_mask = true;
  if (name == "scol") variant.input_mode = doduo::core::InputMode::kSingleColumn;
  if (name == "meta") variant.include_metadata = true;
  if (name == "rand") variant.from_pretrained = false;
  if (name == "dosolo")
    variant.tasks = static_cast<int>(doduo::core::TaskSet::kTypesOnly);
  variant.max_tokens_per_column =
      static_cast<int>(GetEnvInt("DODUO_MAXTOK", 32));
  variant.seed_offset =
      static_cast<uint64_t>(GetEnvInt("DODUO_SEED_OFFSET", 0));

  const DoduoRun run = RunDoduo(&env, variant);
  std::printf("variant=%s\n", name.c_str());
  std::printf("valid type F1 curve:");
  for (double f1 : run.history.valid_type_f1) std::printf(" %.3f", f1);
  std::printf("\n");
  if (!run.history.valid_relation_f1.empty()) {
    std::printf("valid rel F1 curve:");
    for (double f1 : run.history.valid_relation_f1) std::printf(" %.3f", f1);
    std::printf("\n");
  }
  std::printf("test: type F1 %.4f", run.types.micro.f1);
  if (run.has_relations) std::printf(" rel F1 %.4f", run.relations.micro.f1);
  std::printf("\n");

  if (GetEnvInt("DODUO_PER_CLASS", 0) != 0) {
    std::printf("-- per-class type F1 --\n");
    for (const auto& row : doduo::eval::PerClassReport(
             run.types.sets, env.dataset().type_vocab)) {
      std::printf("%-32s n=%-4ld F1=%.3f\n", row.label.c_str(), row.support,
                  row.prf.f1);
    }
    if (run.has_relations) {
      std::printf("-- per-class relation F1 --\n");
      for (const auto& row : doduo::eval::PerClassReport(
               run.relations.sets, env.dataset().relation_vocab)) {
        std::printf("%-32s n=%-4ld F1=%.3f\n", row.label.c_str(),
                    row.support, row.prf.f1);
      }
    }
  }
  return 0;
}
