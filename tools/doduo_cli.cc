// doduo_cli — train, persist, and apply column-annotation models.
//
//   doduo_cli train --out <dir> [--mode wikitable|viznet]
//       Builds the synthetic benchmark, fine-tunes DODUO, and saves a
//       self-contained model directory (weights, vocabulary, label
//       inventories, configuration).
//
//   doduo_cli annotate --model <dir> [--batch] <file.csv>...
//       Loads a saved model and prints per-column semantic types (and
//       key-column relations when the model has a relation head). With
//       --batch, all given CSVs are annotated in one AnnotateTypesBatch
//       call that fans out across the compute pool.
//
//   doduo_cli embed --model <dir> <file.csv>
//       Prints the contextualized column embeddings as CSV.
//
// Every command accepts --threads N to size the compute pool (equivalent
// to DODUO_NUM_THREADS=N; 1 disables parallelism) and --stats to dump the
// pipeline metrics (per-stage latency histograms and counters, see
// DESIGN §10) as JSON on stderr before exiting.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/nn/serialize.h"
#include "doduo/util/csv.h"
#include "doduo/util/env.h"
#include "doduo/util/metrics.h"
#include "doduo/util/string_util.h"
#include "doduo/util/thread_pool.h"

namespace {

using doduo::util::Status;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// ---------------------------------------------------------------------------
// Model directory format: model.ckpt + vocab.txt + types.txt +
// relations.txt + config.txt (key=value).
// ---------------------------------------------------------------------------

Status SaveLabels(const std::string& path,
                  const doduo::table::LabelVocab& vocab) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (int i = 0; i < vocab.size(); ++i) out << vocab.Name(i) << "\n";
  return Status::Ok();
}

doduo::util::Result<doduo::table::LabelVocab> LoadLabels(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  doduo::table::LabelVocab vocab;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) vocab.AddLabel(line);
  }
  return vocab;
}

Status SaveConfig(const std::string& path,
                  const doduo::core::DoduoConfig& config) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "vocab_size=" << config.encoder.vocab_size << "\n"
      << "max_positions=" << config.encoder.max_positions << "\n"
      << "hidden_dim=" << config.encoder.hidden_dim << "\n"
      << "num_layers=" << config.encoder.num_layers << "\n"
      << "num_heads=" << config.encoder.num_heads << "\n"
      << "ffn_dim=" << config.encoder.ffn_dim << "\n"
      << "num_types=" << config.num_types << "\n"
      << "num_relations=" << config.num_relations << "\n"
      << "multi_label=" << (config.multi_label ? 1 : 0) << "\n"
      << "max_tokens_per_column=" << config.serializer.max_tokens_per_column
      << "\n"
      << "max_total_tokens=" << config.serializer.max_total_tokens << "\n";
  return Status::Ok();
}

doduo::util::Result<doduo::core::DoduoConfig> LoadConfig(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  doduo::core::DoduoConfig config;
  config.encoder.dropout = 0.0f;  // inference only
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const long value = std::strtol(line.c_str() + eq + 1, nullptr, 10);
    if (key == "vocab_size") config.encoder.vocab_size = value;
    else if (key == "max_positions") config.encoder.max_positions = value;
    else if (key == "hidden_dim") config.encoder.hidden_dim = value;
    else if (key == "num_layers") config.encoder.num_layers = value;
    else if (key == "num_heads") config.encoder.num_heads = value;
    else if (key == "ffn_dim") config.encoder.ffn_dim = value;
    else if (key == "num_types") config.num_types = value;
    else if (key == "num_relations") config.num_relations = value;
    else if (key == "multi_label") config.multi_label = value != 0;
    else if (key == "max_tokens_per_column")
      config.serializer.max_tokens_per_column = value;
    else if (key == "max_total_tokens")
      config.serializer.max_total_tokens = value;
  }
  if (config.num_relations == 0) {
    config.tasks = doduo::core::TaskSet::kTypesOnly;
  }
  return config;
}

// Everything a loaded model needs, with stable addresses.
struct LoadedModel {
  doduo::core::DoduoConfig config;
  doduo::text::Vocab vocab;
  doduo::table::LabelVocab types;
  doduo::table::LabelVocab relations;
  std::unique_ptr<doduo::text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<doduo::core::DoduoModel> model;
  std::unique_ptr<doduo::table::TableSerializer> serializer;
};

doduo::util::Result<std::unique_ptr<LoadedModel>> LoadModelDir(
    const std::string& dir) {
  auto loaded = std::make_unique<LoadedModel>();
  auto config = LoadConfig(dir + "/config.txt");
  if (!config.ok()) return config.status();
  loaded->config = config.value();

  auto vocab = doduo::text::Vocab::Load(dir + "/vocab.txt");
  if (!vocab.ok()) return vocab.status();
  loaded->vocab = std::move(vocab).value();

  auto types = LoadLabels(dir + "/types.txt");
  if (!types.ok()) return types.status();
  loaded->types = std::move(types).value();
  if (loaded->config.num_relations > 0) {
    auto relations = LoadLabels(dir + "/relations.txt");
    if (!relations.ok()) return relations.status();
    loaded->relations = std::move(relations).value();
  }

  doduo::util::Rng rng(1);
  loaded->model = std::make_unique<doduo::core::DoduoModel>(loaded->config,
                                                            &rng);
  const Status status =
      doduo::nn::LoadParameters(dir + "/model.ckpt",
                                loaded->model->Parameters());
  if (!status.ok()) return status;
  loaded->model->set_training(false);
  loaded->tokenizer = std::make_unique<doduo::text::WordPieceTokenizer>(
      &loaded->vocab);
  loaded->serializer = std::make_unique<doduo::table::TableSerializer>(
      loaded->tokenizer.get(), loaded->config.serializer);
  return loaded;
}

doduo::util::Result<doduo::table::Table> LoadCsvTable(
    const std::string& path) {
  auto rows = doduo::util::ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  return doduo::table::TableFromCsvRows(rows.value(), /*has_header=*/true,
                                        path);
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

int Train(const std::string& out_dir, const std::string& mode) {
  using namespace doduo::experiments;
  EnvOptions options;
  options.mode = mode == "viznet" ? BenchmarkMode::kVizNet
                                  : BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  std::printf("training DODUO on the %s benchmark (%zu tables)...\n",
              mode.c_str(), env.dataset().tables.size());
  DoduoRun run = RunDoduo(&env, DoduoVariant{});
  std::printf("type micro F1 %.1f%%", 100.0 * run.types.micro.f1);
  if (run.has_relations) {
    std::printf(", relation micro F1 %.1f%%", 100.0 * run.relations.micro.f1);
  }
  std::printf("\n");

  std::filesystem::create_directories(out_dir);
  for (const Status& status :
       {doduo::nn::SaveParameters(out_dir + "/model.ckpt",
                                  run.model->Parameters()),
        env.vocab().Save(out_dir + "/vocab.txt"),
        SaveLabels(out_dir + "/types.txt", env.dataset().type_vocab),
        SaveLabels(out_dir + "/relations.txt",
                   env.dataset().relation_vocab),
        SaveConfig(out_dir + "/config.txt", run.model->config())}) {
    if (!status.ok()) return Fail(status.ToString());
  }
  std::printf("saved model directory: %s\n", out_dir.c_str());
  return 0;
}

void PrintTypes(const doduo::table::Table& table,
                const std::vector<std::vector<std::string>>& types) {
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("%s: %s\n", table.column(c).name.c_str(),
                doduo::util::Join(types[static_cast<size_t>(c)], ", ")
                    .c_str());
  }
}

int Annotate(const std::string& model_dir,
             const std::vector<std::string>& csv_paths, bool batch) {
  auto loaded = LoadModelDir(model_dir);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  std::vector<doduo::table::Table> tables;
  for (const std::string& path : csv_paths) {
    auto table = LoadCsvTable(path);
    if (!table.ok()) return Fail(table.status().ToString());
    tables.push_back(std::move(table).value());
  }

  LoadedModel& m = *loaded.value();
  doduo::core::Annotator annotator(
      m.model.get(), m.serializer.get(), &m.types,
      m.config.num_relations > 0 ? &m.relations : nullptr);

  std::vector<std::vector<std::vector<std::string>>> types;
  if (batch) {
    auto result = annotator.AnnotateTypesBatch(tables);
    if (!result.ok()) return Fail(result.status().ToString());
    types = std::move(result).value();
  } else {
    for (size_t t = 0; t < tables.size(); ++t) {
      auto result = annotator.AnnotateTypes(tables[t]);
      if (!result.ok()) {
        return Fail(csv_paths[t] + ": " + result.status().ToString());
      }
      types.push_back(std::move(result).value());
    }
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    if (tables.size() > 1) std::printf("== %s ==\n", csv_paths[t].c_str());
    PrintTypes(tables[t], types[t]);
    if (m.config.num_relations > 0 && tables[t].num_columns() > 1) {
      auto relations = annotator.AnnotateKeyRelations(tables[t]);
      if (!relations.ok()) {
        return Fail(csv_paths[t] + ": " + relations.status().ToString());
      }
      for (size_t c = 0; c < relations.value().size(); ++c) {
        std::printf("(%s, %s): %s\n", tables[t].column(0).name.c_str(),
                    tables[t].column(static_cast<int>(c) + 1).name.c_str(),
                    relations.value()[c].c_str());
      }
    }
  }
  return 0;
}

int Embed(const std::string& model_dir, const std::string& csv_path) {
  auto loaded = LoadModelDir(model_dir);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto table = LoadCsvTable(csv_path);
  if (!table.ok()) return Fail(table.status().ToString());

  LoadedModel& m = *loaded.value();
  doduo::core::Annotator annotator(
      m.model.get(), m.serializer.get(), &m.types,
      m.config.num_relations > 0 ? &m.relations : nullptr);
  auto result = annotator.ColumnEmbeddings(table.value());
  if (!result.ok()) {
    return Fail(csv_path + ": " + result.status().ToString());
  }
  const doduo::nn::Tensor embeddings = std::move(result).value();
  for (int64_t c = 0; c < embeddings.rows(); ++c) {
    std::printf("%s", table.value().column(static_cast<int>(c)).name.c_str());
    for (int64_t j = 0; j < embeddings.cols(); ++j) {
      std::printf(",%.5f", static_cast<double>(embeddings.at(c, j)));
    }
    std::printf("\n");
  }
  return 0;
}

const char* kUsage =
    "usage:\n"
    "  doduo_cli train --out <dir> [--mode wikitable|viznet] [--threads N]\n"
    "  doduo_cli annotate --model <dir> [--batch] [--threads N] [--stats]"
    " <file.csv>...\n"
    "  doduo_cli embed --model <dir> [--threads N] [--stats] <file.csv>\n"
    "\n"
    "  --stats dumps pipeline metrics (counters + latency histograms)\n"
    "  as JSON on stderr before exiting.\n";

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  std::string out_dir;
  std::string model_dir;
  std::string mode = "wikitable";
  std::vector<std::string> csv_paths;
  bool batch = false;
  bool stats = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      doduo::util::SetComputeThreads(
          static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      csv_paths.emplace_back(argv[i]);
    }
  }

  int exit_code = 2;
  if (command == "train" && !out_dir.empty()) {
    exit_code = Train(out_dir, mode);
  } else if (command == "annotate" && !model_dir.empty() &&
             !csv_paths.empty()) {
    exit_code = Annotate(model_dir, csv_paths, batch);
  } else if (command == "embed" && !model_dir.empty() && !csv_paths.empty()) {
    exit_code = Embed(model_dir, csv_paths.front());
  } else {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (stats) {
    std::fprintf(stderr, "%s\n", doduo::util::MetricsToJson().c_str());
  }
  return exit_code;
}
