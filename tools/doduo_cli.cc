// doduo_cli — train, persist, and apply column-annotation models.
//
//   doduo_cli train --out <dir> [--mode wikitable|viznet]
//       Builds the synthetic benchmark, fine-tunes DODUO, and saves a
//       self-contained model directory (weights, vocabulary, label
//       inventories, configuration).
//
//   doduo_cli annotate --model <dir> [--batch] <file.csv>...
//       Loads a saved model and prints per-column semantic types (and
//       key-column relations when the model has a relation head). With
//       --batch, all given CSVs are annotated in one AnnotateTypesBatch
//       call that fans out across the compute pool (warning when the batch
//       is smaller than the pool — the fan-out clamps to the table count).
//
//       Dirty-input flags (DESIGN §15): --outcomes switches to the robust
//       path, printing a calibrated confidence, an abstention, or a
//       machine-readable skip reason per column instead of failing the
//       table; --abstain-below T drops predictions whose calibrated
//       confidence is below T; --no-sanitize disables the column sanitizer
//       pass. The latter two imply --outcomes.
//
//   doduo_cli annotate --server <host:port> <file.csv>...
//       Client mode: sends each CSV to a running doduo_serve daemon over
//       the binary frame protocol instead of loading a model locally.
//       Accepts the same dirty-input flags.
//
//   doduo_cli embed --model <dir> <file.csv>
//       Prints the contextualized column embeddings as CSV.
//
//   doduo_cli stats --server <host:port>
//       Prints a running daemon's metrics (counters + latency histograms,
//       including the serve.* batching stages) as JSON.
//
// Every command accepts --threads N to size the compute pool (equivalent
// to DODUO_NUM_THREADS=N; 1 disables parallelism) and --stats to dump the
// local pipeline metrics (per-stage latency histograms and counters, see
// DESIGN §10) as JSON on stderr before exiting.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/model_io.h"
#include "doduo/experiments/runners.h"
#include "doduo/serve/client.h"
#include "doduo/util/csv.h"
#include "doduo/util/env.h"
#include "doduo/util/metrics.h"
#include "doduo/util/string_util.h"
#include "doduo/util/thread_pool.h"

namespace {

using doduo::util::Status;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

doduo::util::Result<doduo::table::Table> LoadCsvTable(
    const std::string& path) {
  auto rows = doduo::util::ReadCsvFile(path);
  if (!rows.ok()) return rows.status();
  return doduo::table::TableFromCsvRows(rows.value(), /*has_header=*/true,
                                        path);
}

/// Parses "host:port" (or ":port" / bare "port" for localhost).
bool ParseEndpoint(const std::string& endpoint, std::string* host,
                   int* port) {
  const auto colon = endpoint.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  *host = colon == std::string::npos || colon == 0
              ? "127.0.0.1"
              : endpoint.substr(0, colon);
  *port = static_cast<int>(std::strtol(port_text.c_str(), nullptr, 10));
  return *port > 0 && *port < 65536;
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

int Train(const std::string& out_dir, const std::string& mode) {
  using namespace doduo::experiments;
  EnvOptions options;
  options.mode = mode == "viznet" ? BenchmarkMode::kVizNet
                                  : BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  std::printf("training DODUO on the %s benchmark (%zu tables)...\n",
              mode.c_str(), env.dataset().tables.size());
  DoduoRun run = RunDoduo(&env, DoduoVariant{});
  std::printf("type micro F1 %.1f%%", 100.0 * run.types.micro.f1);
  if (run.has_relations) {
    std::printf(", relation micro F1 %.1f%%", 100.0 * run.relations.micro.f1);
  }
  std::printf("\n");

  const Status saved = doduo::core::SaveModelDir(
      out_dir, run.model.get(), env.vocab(), env.dataset().type_vocab,
      env.dataset().relation_vocab);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("saved model directory: %s\n", out_dir.c_str());
  return 0;
}

void PrintTypes(const doduo::table::Table& table,
                const std::vector<std::vector<std::string>>& types) {
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("%s: %s\n", table.column(c).name.c_str(),
                doduo::util::Join(types[static_cast<size_t>(c)], ", ")
                    .c_str());
  }
}

void PrintOutcomes(const doduo::table::Table& table,
                   const std::vector<doduo::core::ColumnOutcome>& outcomes) {
  for (int c = 0; c < table.num_columns(); ++c) {
    const doduo::core::ColumnOutcome& outcome =
        outcomes[static_cast<size_t>(c)];
    const char* name = table.column(c).name.c_str();
    if (!outcome.skipped_reason.empty()) {
      std::printf("%s: [skipped: %s]\n", name,
                  outcome.skipped_reason.c_str());
    } else if (outcome.abstained) {
      std::printf("%s: [abstained, confidence=%.3f]\n", name,
                  outcome.confidence);
    } else {
      std::printf("%s: %s (confidence=%.3f)\n", name,
                  doduo::util::Join(outcome.labels, ", ").c_str(),
                  outcome.confidence);
    }
  }
}

/// Options of the dirty-input annotation mode (`--outcomes` and friends).
struct OutcomeFlags {
  bool enabled = false;
  bool sanitize = true;
  double abstain_below = 0.0;
};

/// Client mode: annotate each CSV through a doduo_serve endpoint.
int AnnotateRemote(const std::string& endpoint,
                   const std::vector<std::string>& csv_paths,
                   const OutcomeFlags& outcome_flags) {
  std::string host;
  int port = 0;
  if (!ParseEndpoint(endpoint, &host, &port)) {
    return Fail("cannot parse --server endpoint: " + endpoint);
  }
  auto client = doduo::serve::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status().ToString());
  for (const std::string& path : csv_paths) {
    auto table = LoadCsvTable(path);
    if (!table.ok()) return Fail(table.status().ToString());
    if (csv_paths.size() > 1) std::printf("== %s ==\n", path.c_str());
    if (outcome_flags.enabled) {
      auto outcomes = client.value().AnnotateTypesRobust(
          table.value(), outcome_flags.sanitize,
          outcome_flags.abstain_below);
      if (!outcomes.ok()) {
        return Fail(path + ": " + outcomes.status().ToString());
      }
      PrintOutcomes(table.value(), outcomes.value());
      continue;
    }
    auto types = client.value().AnnotateTypes(table.value());
    if (!types.ok()) return Fail(path + ": " + types.status().ToString());
    PrintTypes(table.value(), types.value());
  }
  return 0;
}

int Annotate(const std::string& model_dir,
             const std::vector<std::string>& csv_paths, bool batch,
             const OutcomeFlags& outcome_flags) {
  auto loaded = doduo::core::LoadModelDir(model_dir);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  std::vector<doduo::table::Table> tables;
  for (const std::string& path : csv_paths) {
    auto table = LoadCsvTable(path);
    if (!table.ok()) return Fail(table.status().ToString());
    tables.push_back(std::move(table).value());
  }

  doduo::core::LoadedModel& m = *loaded.value();
  doduo::core::Annotator annotator = m.MakeAnnotator();

  if (outcome_flags.enabled) {
    doduo::core::AnnotateOptions options;
    options.sanitize = outcome_flags.sanitize;
    options.abstain_below = outcome_flags.abstain_below;
    std::vector<std::vector<doduo::core::ColumnOutcome>> outcomes;
    if (batch) {
      doduo::core::WarnIfBatchClampedToTableCount(
          tables.size(), doduo::util::ComputePool()->num_threads());
      outcomes = annotator.AnnotateTypesRobustBatch(tables, options);
    } else {
      for (const doduo::table::Table& table : tables) {
        outcomes.push_back(annotator.AnnotateTypesRobust(table, options));
      }
    }
    for (size_t t = 0; t < tables.size(); ++t) {
      if (tables.size() > 1) std::printf("== %s ==\n", csv_paths[t].c_str());
      PrintOutcomes(tables[t], outcomes[t]);
    }
    return 0;
  }

  std::vector<std::vector<std::vector<std::string>>> types;
  if (batch) {
    doduo::core::WarnIfBatchClampedToTableCount(
        tables.size(), doduo::util::ComputePool()->num_threads());
    auto result = annotator.AnnotateTypesBatch(tables);
    if (!result.ok()) return Fail(result.status().ToString());
    types = std::move(result).value();
  } else {
    for (size_t t = 0; t < tables.size(); ++t) {
      auto result = annotator.AnnotateTypes(tables[t]);
      if (!result.ok()) {
        return Fail(csv_paths[t] + ": " + result.status().ToString());
      }
      types.push_back(std::move(result).value());
    }
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    if (tables.size() > 1) std::printf("== %s ==\n", csv_paths[t].c_str());
    PrintTypes(tables[t], types[t]);
    if (m.config.num_relations > 0 && tables[t].num_columns() > 1) {
      auto relations = annotator.AnnotateKeyRelations(tables[t]);
      if (!relations.ok()) {
        return Fail(csv_paths[t] + ": " + relations.status().ToString());
      }
      for (size_t c = 0; c < relations.value().size(); ++c) {
        std::printf("(%s, %s): %s\n", tables[t].column(0).name.c_str(),
                    tables[t].column(static_cast<int>(c) + 1).name.c_str(),
                    relations.value()[c].c_str());
      }
    }
  }
  return 0;
}

int Embed(const std::string& model_dir, const std::string& csv_path) {
  auto loaded = doduo::core::LoadModelDir(model_dir);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  auto table = LoadCsvTable(csv_path);
  if (!table.ok()) return Fail(table.status().ToString());

  doduo::core::Annotator annotator = loaded.value()->MakeAnnotator();
  auto result = annotator.ColumnEmbeddings(table.value());
  if (!result.ok()) {
    return Fail(csv_path + ": " + result.status().ToString());
  }
  const doduo::nn::Tensor embeddings = std::move(result).value();
  for (int64_t c = 0; c < embeddings.rows(); ++c) {
    std::printf("%s", table.value().column(static_cast<int>(c)).name.c_str());
    for (int64_t j = 0; j < embeddings.cols(); ++j) {
      std::printf(",%.5f", static_cast<double>(embeddings.at(c, j)));
    }
    std::printf("\n");
  }
  return 0;
}

int RemoteStats(const std::string& endpoint) {
  std::string host;
  int port = 0;
  if (!ParseEndpoint(endpoint, &host, &port)) {
    return Fail("cannot parse --server endpoint: " + endpoint);
  }
  auto client = doduo::serve::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status().ToString());
  auto stats = client.value().Stats();
  if (!stats.ok()) return Fail(stats.status().ToString());
  std::printf("%s\n", stats.value().c_str());
  return 0;
}

const char* kUsage =
    "usage:\n"
    "  doduo_cli train --out <dir> [--mode wikitable|viznet] [--threads N]\n"
    "  doduo_cli annotate --model <dir> [--batch] [--threads N] [--stats]\n"
    "      [--outcomes] [--abstain-below T] [--no-sanitize] <file.csv>...\n"
    "  doduo_cli annotate --server <host:port> [--outcomes]"
    " [--abstain-below T]\n"
    "      [--no-sanitize] <file.csv>...\n"
    "  doduo_cli embed --model <dir> [--threads N] [--stats] <file.csv>\n"
    "  doduo_cli stats --server <host:port>\n"
    "\n"
    "  --server talks to a running doduo_serve daemon instead of loading\n"
    "  a model locally; --stats dumps local pipeline metrics (counters +\n"
    "  latency histograms) as JSON on stderr before exiting.\n"
    "  --outcomes uses the dirty-input path: per column, labels with a\n"
    "  calibrated confidence, an abstention, or a machine-readable skip\n"
    "  reason. --abstain-below T abstains on predictions whose confidence\n"
    "  falls below T; --no-sanitize skips the column sanitizer pass. Both\n"
    "  imply --outcomes.\n";

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  std::string out_dir;
  std::string model_dir;
  std::string server;
  std::string mode = "wikitable";
  std::vector<std::string> csv_paths;
  bool batch = false;
  bool stats = false;
  OutcomeFlags outcome_flags;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server = argv[++i];
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      doduo::util::SetComputeThreads(
          static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--outcomes") == 0) {
      outcome_flags.enabled = true;
    } else if (std::strcmp(argv[i], "--abstain-below") == 0 && i + 1 < argc) {
      outcome_flags.abstain_below = std::strtod(argv[++i], nullptr);
      outcome_flags.enabled = true;
    } else if (std::strcmp(argv[i], "--no-sanitize") == 0) {
      outcome_flags.sanitize = false;
      outcome_flags.enabled = true;
    } else {
      csv_paths.emplace_back(argv[i]);
    }
  }

  int exit_code = 2;
  if (command == "train" && !out_dir.empty()) {
    exit_code = Train(out_dir, mode);
  } else if (command == "annotate" && !server.empty() && !csv_paths.empty()) {
    exit_code = AnnotateRemote(server, csv_paths, outcome_flags);
  } else if (command == "annotate" && !model_dir.empty() &&
             !csv_paths.empty()) {
    exit_code = Annotate(model_dir, csv_paths, batch, outcome_flags);
  } else if (command == "embed" && !model_dir.empty() && !csv_paths.empty()) {
    exit_code = Embed(model_dir, csv_paths.front());
  } else if (command == "stats" && !server.empty()) {
    exit_code = RemoteStats(server);
  } else {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (stats) {
    std::fprintf(stderr, "%s\n", doduo::util::MetricsToJson().c_str());
  }
  return exit_code;
}
