// doduo_serve — long-running annotation daemon (DESIGN §12).
//
//   doduo_serve --model <dir> [--host H] [--port P] [--replicas N]
//               [--max-batch N] [--max-wait-us N] [--queue-depth N]
//
// Loads a saved model directory once, builds a ReplicaPool (one immutable
// shared weight snapshot, per-replica forward workspaces), and serves the
// length-prefixed binary protocol of serve/protocol.h over TCP. Concurrent
// single-table requests are coalesced into batches by the dynamic batcher;
// when the queue is full new requests are rejected with kResourceExhausted
// (backpressure) instead of queuing without bound.
//
// --replicas defaults to the compute pool size (DODUO_NUM_THREADS /
// --threads). Query live metrics with `doduo_cli stats --server host:port`.
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "doduo/core/model_io.h"
#include "doduo/core/replica_pool.h"
#include "doduo/nn/quant.h"
#include "doduo/serve/server.h"
#include "doduo/util/env.h"
#include "doduo/util/thread_pool.h"

namespace {

// Polled by the main loop between Server::WaitFor ticks. The handler only
// stores a flag: Server::Stop() locks, and taking a lock (or spawning a
// thread) in async-signal context is undefined behavior — the main thread
// runs the actual shutdown.
std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*signum*/) { g_shutdown.store(true); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

const char* kUsage =
    "usage: doduo_serve --model <dir> [--host H] [--port P] [--replicas N]\n"
    "                   [--max-batch N] [--max-wait-us N] [--queue-depth N]\n"
    "                   [--threads N]\n";

}  // namespace

int main(int argc, char** argv) {
  std::string model_dir;
  doduo::serve::ServerOptions options;
  options.port = 8642;
  int replicas = 0;  // 0 = compute pool size
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--model") == 0 && has_value) {
      model_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--host") == 0 && has_value) {
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && has_value) {
      options.port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--replicas") == 0 && has_value) {
      replicas = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-batch") == 0 && has_value) {
      options.batcher.max_batch_size =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-wait-us") == 0 && has_value) {
      options.batcher.max_wait_us = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && has_value) {
      options.batcher.max_queue_depth =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && has_value) {
      doduo::util::SetComputeThreads(
          static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (model_dir.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  auto loaded = doduo::core::LoadModelDir(model_dir);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  doduo::core::LoadedModel& m = *loaded.value();

  if (replicas <= 0) {
    replicas = doduo::util::ComputePool()->num_threads();
  }
  doduo::core::ReplicaPool pool(m.model.get(), m.serializer.get(), &m.types,
                                m.relation_vocab(), replicas);
  options.batcher.num_workers = pool.num_replicas();

  doduo::serve::Server server(&pool, options);
  if (doduo::util::Status started = server.Start(); !started.ok()) {
    return Fail(started.ToString());
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("doduo_serve: %d replica(s), batch<=%d, wait<=%ldus\n",
              pool.num_replicas(), options.batcher.max_batch_size,
              static_cast<long>(options.batcher.max_wait_us));
  std::printf("doduo_serve: int8 %s (kernel %s, DODUO_QUANT)\n",
              doduo::nn::QuantEnabled() ? "on" : "off",
              doduo::nn::Int8KernelName());
  std::printf("listening on %s:%d\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  // Park until a signal arrives or someone else stopped the server. The
  // 200ms tick is the signal-to-shutdown latency bound.
  while (!g_shutdown.load() && !server.WaitFor(/*timeout_us=*/200 * 1000)) {
  }
  server.Stop();
  std::printf("doduo_serve: drained, exiting\n");
  return 0;
}
